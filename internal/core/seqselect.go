package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// This file implements the sequenced rewrite of a single SELECT over
// period-timestamped operands: the classical SQL/Temporal
// transformation of Figure 4. The result carries begin_time/end_time
// columns computed as the intersection of the operands' periods
// (LAST_INSTANCE of begins, FIRST_INSTANCE of ends), with pairwise
// overlap predicates guaranteeing a non-empty intersection.

// temporalOperand is one FROM-clause element carrying a validity
// period: a temporal base table, a time-varying variable's table, or a
// lateral ps_-function result.
type temporalOperand struct {
	Alias string
	// BeginCol/EndCol name the period columns (begin_time/end_time).
	BeginCol, EndCol string
}

func operandRef(op temporalOperand, begin bool) sqlast.Expr {
	if begin {
		return col(op.Alias, op.BeginCol)
	}
	return col(op.Alias, op.EndCol)
}

// chainInstance folds exprs with FIRST_INSTANCE/LAST_INSTANCE calls.
func chainInstance(fn string, exprs []sqlast.Expr) sqlast.Expr {
	if len(exprs) == 0 {
		return nil
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &sqlast.FuncCall{Name: fn, Args: []sqlast.Expr{out, e}}
	}
	return out
}

// intersectionBegin builds LAST_INSTANCE(op1.begin, op2.begin, ..., pBegin).
func intersectionBegin(ops []temporalOperand, pBegin sqlast.Expr) sqlast.Expr {
	var exprs []sqlast.Expr
	for _, op := range ops {
		exprs = append(exprs, operandRef(op, true))
	}
	if pBegin != nil {
		exprs = append(exprs, sqlast.CloneExpr(pBegin))
	}
	return chainInstance("LAST_INSTANCE", exprs)
}

// intersectionEnd builds FIRST_INSTANCE(op1.end, op2.end, ..., pEnd).
func intersectionEnd(ops []temporalOperand, pEnd sqlast.Expr) sqlast.Expr {
	var exprs []sqlast.Expr
	for _, op := range ops {
		exprs = append(exprs, operandRef(op, false))
	}
	if pEnd != nil {
		exprs = append(exprs, sqlast.CloneExpr(pEnd))
	}
	return chainInstance("FIRST_INSTANCE", exprs)
}

// overlapConditions builds the pairwise overlap predicates between
// operands plus each operand's overlap with the context [pBegin, pEnd).
func overlapConditions(ops []temporalOperand, pBegin, pEnd sqlast.Expr) sqlast.Expr {
	var cond sqlast.Expr
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			cond = andExpr(cond, &sqlast.BinaryExpr{Op: "<",
				L: operandRef(ops[i], true), R: operandRef(ops[j], false)})
			cond = andExpr(cond, &sqlast.BinaryExpr{Op: "<",
				L: operandRef(ops[j], true), R: operandRef(ops[i], false)})
		}
	}
	for _, op := range ops {
		if pEnd != nil {
			cond = andExpr(cond, &sqlast.BinaryExpr{Op: "<",
				L: operandRef(op, true), R: sqlast.CloneExpr(pEnd)})
		}
		if pBegin != nil {
			cond = andExpr(cond, &sqlast.BinaryExpr{Op: "<",
				L: sqlast.CloneExpr(pBegin), R: operandRef(op, false)})
		}
	}
	return cond
}

// hasTemporalSubquery reports whether any subquery under e references a
// temporal table or temporal routine — constructs per-statement slicing
// cannot handle inside a sequenced SELECT (the paper's "per-statement
// mapping is not complete"; MAX covers them by point evaluation).
func (tr *Translator) hasTemporalSubquery(n sqlast.Node, a *analysis, localTemporal map[string]bool) bool {
	found := false
	var checkQuery func(q sqlast.Node)
	checkQuery = func(q sqlast.Node) {
		sqlast.Walk(q, func(m sqlast.Node) bool {
			switch y := m.(type) {
			case *sqlast.BaseTable:
				if tr.Info.IsTemporalTable(y.Name) || localTemporal[strings.ToLower(y.Name)] {
					found = true
				}
			case *sqlast.FuncCall:
				if a.temporalRoutine(y.Name) {
					found = true
				}
			}
			return !found
		})
	}
	sqlast.Walk(n, func(m sqlast.Node) bool {
		switch x := m.(type) {
		case *sqlast.SubqueryExpr:
			checkQuery(x.Query)
			return false
		case *sqlast.ExistsExpr:
			checkQuery(x.Sub)
			return false
		case *sqlast.InExpr:
			if x.Sub != nil {
				checkQuery(x.Sub)
			}
			return true
		}
		return !found
	})
	return found
}

// seqCtx carries the state of a sequenced (per-statement) query
// rewrite.
type seqCtx struct {
	a            *analysis
	pBegin, pEnd sqlast.Expr
	// ctxBegin/ctxEnd is the explicit secondary-dimension context of a
	// combined bitemporal modifier; nil means the current instant.
	ctxBegin, ctxEnd sqlast.Expr
	localTemporal    map[string]bool // temp tables / tv vars acting as temporal operands
	lateralCounter   *int
}

// dim is the dimension the rewrite slices along (the analysis
// dimension, defaulting to valid time for dimension-blind analyses).
func (sc *seqCtx) dim() sqlast.TemporalDimension {
	if sc.a.dim == dimAny {
		return sqlast.DimValid
	}
	return sc.a.dim
}

// isOperand reports whether a FROM base table participates in the
// period intersection: it must carry the sliced dimension (tables
// carrying only the orthogonal one are context-filtered instead).
func (sc *seqCtx) isOperand(tr *Translator, name string) bool {
	if sc.localTemporal[strings.ToLower(name)] {
		return true
	}
	return tr.Info.IsTemporalTable(name) && tr.carriesDim(name, sc.dim())
}

// operandCols names the period columns a base-table operand is sliced
// on (local temporaries always use the standard pair).
func (sc *seqCtx) operandCols(tr *Translator, name string) (string, string) {
	if sc.localTemporal[strings.ToLower(name)] {
		return "begin_time", "end_time"
	}
	return tr.slicePeriodCols(name, sc.dim())
}

func (sc *seqCtx) freshAlias() string {
	*sc.lateralCounter++
	return fmt.Sprintf("taupsm_f%d", *sc.lateralCounter)
}

// rewriteSequencedSelect rewrites sel (in place, on a clone owned by
// the caller) to its sequenced equivalent over [pBegin, pEnd):
//
//  1. every invocation of a temporal routine becomes a lateral
//     TABLE(ps_name(args, pBegin, pEnd)) AS taupsm_fN reference whose
//     taupsm_result column replaces the call;
//  2. begin_time/end_time items computed from the intersection of all
//     temporal operands are prepended to the select list;
//  3. pairwise overlap predicates are added to WHERE.
//
// It returns ErrNotTransformable for constructs per-statement slicing
// cannot express (temporal subqueries, aggregates over temporal data).
func (tr *Translator) rewriteSequencedSelect(sel *sqlast.SelectStmt, sc *seqCtx) error {
	// Reject temporal subqueries and temporal aggregation.
	if tr.hasTemporalSubquery(sel, sc.a, sc.localTemporal) {
		return fmt.Errorf("%w: sequenced subquery over temporal data", ErrNotTransformable)
	}

	// Identify temporal operands already in FROM.
	var ops []temporalOperand
	for i, ref := range sel.From {
		switch x := ref.(type) {
		case *sqlast.BaseTable:
			if sc.isOperand(tr, x.Name) {
				alias := x.Alias
				if alias == "" {
					alias = x.Name
				}
				bcol, ecol := sc.operandCols(tr, x.Name)
				ops = append(ops, temporalOperand{Alias: alias, BeginCol: bcol, EndCol: ecol})
			}
		case *sqlast.TableFunc:
			// A routine invoked in the FROM clause (τPSM q19): rename
			// to its ps_ form and treat the result as temporal.
			if sc.a.temporalRoutine(x.Call.Name) {
				x.Call.Name = "ps_" + x.Call.Name
				x.Call.Args = append(x.Call.Args, sqlast.CloneExpr(sc.pBegin), sqlast.CloneExpr(sc.pEnd))
				if len(x.Cols) > 0 {
					x.Cols = append(x.Cols, "begin_time", "end_time")
				}
				ops = append(ops, temporalOperand{Alias: x.Alias, BeginCol: "begin_time", EndCol: "end_time"})
			}
			_ = i
		case *sqlast.JoinExpr:
			var visit func(r sqlast.TableRef)
			visit = func(r sqlast.TableRef) {
				switch y := r.(type) {
				case *sqlast.BaseTable:
					if sc.isOperand(tr, y.Name) {
						alias := y.Alias
						if alias == "" {
							alias = y.Name
						}
						bcol, ecol := sc.operandCols(tr, y.Name)
						ops = append(ops, temporalOperand{Alias: alias, BeginCol: bcol, EndCol: ecol})
					}
				case *sqlast.JoinExpr:
					visit(y.L)
					visit(y.R)
				}
			}
			visit(x)
		}
	}

	// Check aggregate use over temporal data: if the select has
	// aggregates and any temporal operand, PERST cannot slice it.
	hasAgg := false
	for _, it := range sel.Items {
		if it.Expr != nil {
			sqlast.Walk(it.Expr, func(n sqlast.Node) bool {
				if fc, ok := n.(*sqlast.FuncCall); ok {
					switch strings.ToUpper(fc.Name) {
					case "COUNT", "SUM", "AVG", "MIN", "MAX":
						hasAgg = true
					}
				}
				return true
			})
		}
	}

	// Replace temporal routine invocations with lateral TABLE refs.
	var replaceErr error
	sqlast.MapExprs(sel, func(e sqlast.Expr) sqlast.Expr {
		fc, ok := e.(*sqlast.FuncCall)
		if !ok || !sc.a.temporalRoutine(fc.Name) {
			return e
		}
		alias := sc.freshAlias()
		call := &sqlast.FuncCall{Name: "ps_" + fc.Name, Args: append(fc.Args,
			sqlast.CloneExpr(sc.pBegin), sqlast.CloneExpr(sc.pEnd))}
		sel.From = append(sel.From, &sqlast.TableFunc{Call: call, Alias: alias})
		ops = append(ops, temporalOperand{Alias: alias, BeginCol: "begin_time", EndCol: "end_time"})
		return &sqlast.ColumnRef{Table: alias, Column: "taupsm_result"}
	})
	if replaceErr != nil {
		return replaceErr
	}

	if hasAgg && len(ops) > 0 {
		return fmt.Errorf("%w: sequenced aggregation requires constant periods", ErrNotTransformable)
	}
	if len(sel.GroupBy) > 0 && len(ops) > 0 {
		return fmt.Errorf("%w: sequenced GROUP BY requires constant periods", ErrNotTransformable)
	}

	// Prepend the result period and add overlap predicates.
	begin := intersectionBegin(ops, sc.pBegin)
	end := intersectionEnd(ops, sc.pEnd)
	if begin == nil { // no temporal operands: constant over the context
		begin = sqlast.CloneExpr(sc.pBegin)
		end = sqlast.CloneExpr(sc.pEnd)
	}
	sel.Items = append([]sqlast.SelectItem{
		{Expr: begin, Alias: "begin_time"},
		{Expr: end, Alias: "end_time"},
	}, sel.Items...)
	if cond := overlapConditions(ops, sc.pBegin, sc.pEnd); cond != nil {
		sel.Where = andExpr(sel.Where, cond)
	}
	// Tables carrying the orthogonal dimension are pinned to the
	// secondary-dimension context (the current instant by default).
	tr.addContextFilters(sel, sc.dim(), sc.ctxBegin, sc.ctxEnd)
	return nil
}
