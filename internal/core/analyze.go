package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// analysis is the compile-time reachability information the transforms
// rely on (paper §V-A: "collect at compile time all the temporal tables
// that are referenced directly or indirectly by the query").
type analysis struct {
	dim            sqlast.TemporalDimension
	tables         []string // reachable base tables, first-seen order
	temporalTables []string // temporal tables of the analyzed dimension
	mismatched     []string // temporal tables of the *other* dimension
	routines       []string // reachable routines, first-seen order

	routineDef      map[string]sqlast.Stmt // lowercased name -> definition
	isProc          map[string]bool
	routineTemporal map[string]bool // routine (transitively) touches temporal data
	modifierIn      map[string]bool // routine contains a temporal modifier
	directTables    map[string][]string
	callees         map[string][]string
}

// temporalRoutine reports whether the named routine transitively
// references temporal data.
func (a *analysis) temporalRoutine(name string) bool {
	return a.routineTemporal[strings.ToLower(name)]
}

// direct holds what one statement references without recursion.
type direct struct {
	tables      []string
	calls       []string
	hasModifier bool
}

// collectDirect finds base tables, routine invocations, and temporal
// modifiers in a single pass over one statement.
func (tr *Translator) collectDirect(stmt sqlast.Stmt) direct {
	var d direct
	seenT := map[string]bool{}
	seenC := map[string]bool{}
	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.BaseTable:
			k := strings.ToLower(x.Name)
			if !seenT[k] && tr.Info.IsTable(x.Name) {
				seenT[k] = true
				d.tables = append(d.tables, x.Name)
			}
		case *sqlast.FuncCall:
			k := strings.ToLower(x.Name)
			if !seenC[k] && tr.Info.Function(x.Name) != nil {
				seenC[k] = true
				d.calls = append(d.calls, x.Name)
			}
		case *sqlast.CallStmt:
			k := strings.ToLower(x.Name)
			if !seenC[k] && tr.Info.Procedure(x.Name) != nil {
				seenC[k] = true
				d.calls = append(d.calls, x.Name)
			}
		case *sqlast.TemporalStmt:
			if x.Mod != sqlast.ModCurrent {
				d.hasModifier = true
			}
		}
		return true
	})
	return d
}

// dimAny is the sentinel dimension used by current-semantics analysis,
// where valid-time and transaction-time tables are treated alike.
const dimAny = sqlast.TemporalDimension(255)

// isTransactionTable consults the optional extension of SchemaInfo.
func (tr *Translator) isTransactionTable(name string) bool {
	if ti, ok := tr.Info.(interface{ IsTransactionTable(string) bool }); ok {
		return ti.IsTransactionTable(name)
	}
	return false
}

// dimOf classifies a single-dimension temporal table's dimension
// (bitemporal tables carry both; use carriesDim).
func (tr *Translator) dimOf(name string) sqlast.TemporalDimension {
	if tr.isTransactionTable(name) {
		return sqlast.DimTransaction
	}
	return sqlast.DimValid
}

// analyze computes the reachability closure of stmt over the routine
// call graph, classifying each routine as temporal or not, relative to
// the statement's time dimension (dimAny matches both).
func (tr *Translator) analyze(stmt sqlast.Stmt) (*analysis, error) {
	return tr.analyzeDim(stmt, dimAny)
}

func (tr *Translator) analyzeDim(stmt sqlast.Stmt, dim sqlast.TemporalDimension) (*analysis, error) {
	a := &analysis{
		dim:             dim,
		routineDef:      map[string]sqlast.Stmt{},
		isProc:          map[string]bool{},
		routineTemporal: map[string]bool{},
		modifierIn:      map[string]bool{},
		directTables:    map[string][]string{},
		callees:         map[string][]string{},
	}
	seenTable := map[string]bool{}
	seenRoutine := map[string]bool{}

	addTables := func(tables []string) {
		for _, t := range tables {
			k := strings.ToLower(t)
			if !seenTable[k] {
				seenTable[k] = true
				a.tables = append(a.tables, t)
				if tr.Info.IsTemporalTable(t) {
					if tr.carriesDim(t, dim) {
						a.temporalTables = append(a.temporalTables, t)
					} else {
						a.mismatched = append(a.mismatched, t)
					}
				}
			}
		}
	}

	root := tr.collectDirect(stmt)
	addTables(root.tables)
	queue := append([]string{}, root.calls...)

	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		k := strings.ToLower(name)
		if seenRoutine[k] {
			continue
		}
		seenRoutine[k] = true
		a.routines = append(a.routines, name)
		var body sqlast.Stmt
		if fn := tr.Info.Function(name); fn != nil {
			a.routineDef[k] = fn
			body = fn.Body
		} else if pr := tr.Info.Procedure(name); pr != nil {
			a.routineDef[k] = pr
			a.isProc[k] = true
			body = pr.Body
		} else {
			return nil, fmt.Errorf("routine %s referenced but not defined", name)
		}
		d := tr.collectDirect(body)
		addTables(d.tables)
		a.directTables[k] = d.tables
		a.callees[k] = d.calls
		a.modifierIn[k] = d.hasModifier
		queue = append(queue, d.calls...)
	}

	// Fixpoint: a routine is temporal if it references a temporal table
	// directly or calls a temporal routine.
	for changed := true; changed; {
		changed = false
		for _, r := range a.routines {
			k := strings.ToLower(r)
			if a.routineTemporal[k] {
				continue
			}
			temporal := false
			for _, t := range a.directTables[k] {
				if tr.Info.IsTemporalTable(t) && tr.carriesDim(t, dim) {
					temporal = true
					break
				}
			}
			if !temporal {
				for _, c := range a.callees[k] {
					if a.routineTemporal[strings.ToLower(c)] {
						temporal = true
						break
					}
				}
			}
			if temporal {
				a.routineTemporal[k] = true
				changed = true
			}
		}
	}
	return a, nil
}

// checkNoInnerModifiers returns ErrSequencedModifierInRoutine when any
// reachable routine contains a temporal statement modifier: such
// routines may only be invoked from nonsequenced contexts (§IV-A).
func (tr *Translator) checkNoInnerModifiers(a *analysis) error {
	for _, r := range a.routines {
		if a.modifierIn[strings.ToLower(r)] {
			return fmt.Errorf("routine %s: %w", r, ErrSequencedModifierInRoutine)
		}
	}
	return nil
}

// renameCalls rewrites invocations of routines satisfying pred to
// prefix+name, in expressions (function calls) and CALL statements.
func renameCalls(stmt sqlast.Stmt, a *analysis, prefix string, pred func(name string) bool) {
	sqlast.MapExprs(stmt, func(e sqlast.Expr) sqlast.Expr {
		if fc, ok := e.(*sqlast.FuncCall); ok {
			if _, known := a.routineDef[strings.ToLower(fc.Name)]; known && pred(fc.Name) {
				fc.Name = prefix + fc.Name
			}
		}
		return e
	})
	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		if cs, ok := n.(*sqlast.CallStmt); ok {
			if _, known := a.routineDef[strings.ToLower(cs.Name)]; known && pred(cs.Name) {
				cs.Name = prefix + cs.Name
			}
		}
		return true
	})
}

// forEachSelect visits every SelectStmt in the statement tree,
// including those in subqueries, cursor declarations and routine-body
// statements.
func forEachSelect(stmt sqlast.Node, f func(*sqlast.SelectStmt)) {
	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		if sel, ok := n.(*sqlast.SelectStmt); ok {
			f(sel)
		}
		return true
	})
}

// andExpr conjoins two expressions, tolerating nils.
func andExpr(a, b sqlast.Expr) sqlast.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return &sqlast.BinaryExpr{Op: "AND", L: a, R: b}
}

// fromEntries lists the (alias, tableName) pairs of a select's FROM
// clause base tables, flattening JOIN trees.
func fromEntries(sel *sqlast.SelectStmt) [](struct{ Alias, Name string }) {
	var out [](struct{ Alias, Name string })
	var visit func(r sqlast.TableRef)
	visit = func(r sqlast.TableRef) {
		switch x := r.(type) {
		case *sqlast.BaseTable:
			alias := x.Alias
			if alias == "" {
				alias = x.Name
			}
			out = append(out, struct{ Alias, Name string }{alias, x.Name})
		case *sqlast.JoinExpr:
			visit(x.L)
			visit(x.R)
		}
	}
	for _, r := range sel.From {
		visit(r)
	}
	return out
}

func col(table, name string) sqlast.Expr {
	return &sqlast.ColumnRef{Table: table, Column: name}
}

func otherDim(d sqlast.TemporalDimension) sqlast.TemporalDimension {
	if d == sqlast.DimTransaction {
		return sqlast.DimValid
	}
	return sqlast.DimTransaction
}

// checkNoManualTransactionDML rejects modifications of
// transaction-time-only tables under NONSEQUENCED or sequenced
// modifiers: transaction time is system-maintained and append-only, so
// only current modifications (automatic auditing) are legal. A
// bitemporal target is fine — its valid-time dimension is user-visible
// and the transforms version transaction time automatically.
func (tr *Translator) checkNoManualTransactionDML(body sqlast.Stmt) error {
	var bad string
	sqlast.Walk(body, func(n sqlast.Node) bool {
		var target string
		switch x := n.(type) {
		case *sqlast.InsertStmt:
			if !x.VarTarget {
				target = x.Table
			}
		case *sqlast.UpdateStmt:
			if !x.VarTarget {
				target = x.Table
			}
		case *sqlast.DeleteStmt:
			if !x.VarTarget {
				target = x.Table
			}
		}
		if target != "" && tr.isTransactionTable(target) && !tr.isBitemporalTable(target) {
			bad = target
		}
		return bad == ""
	})
	if bad != "" {
		return fmt.Errorf("transaction time of table %s is system-maintained; only current modifications are allowed", bad)
	}
	return nil
}
