package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Current semantics (paper §IV-C): the statement behaves as a regular
// statement on the current timeslice. The transform adds
//
//	t.begin_time <= CURRENT_DATE AND CURRENT_DATE < t.end_time
//
// to every WHERE clause whose FROM mentions a temporal table — in the
// statement itself and in curr_-prefixed clones of every reachable
// temporal routine. Current modifications maintain validity periods.

func currentDate() sqlast.Expr { return &sqlast.FuncCall{Name: "CURRENT_DATE"} }

func foreverLit() sqlast.Expr {
	_, e := defaultContext()
	return e
}

// currentOverlap builds alias.begin_time <= CURRENT_DATE AND
// CURRENT_DATE < alias.end_time.
func currentOverlap(alias string) sqlast.Expr {
	return andExpr(
		&sqlast.BinaryExpr{Op: "<=", L: col(alias, "begin_time"), R: currentDate()},
		&sqlast.BinaryExpr{Op: "<", L: currentDate(), R: col(alias, "end_time")},
	)
}

// ttCurrentOverlap builds the current-belief predicate on a bitemporal
// table's transaction-time pair.
func ttCurrentOverlap(alias string) sqlast.Expr {
	return ctxFilter(alias, "tt_begin_time", "tt_end_time", nil, nil)
}

// addCurrentPredicates adds the current-timeslice predicate for every
// temporal table in every SELECT under stmt; bitemporal tables are
// additionally restricted to the currently believed versions.
func (tr *Translator) addCurrentPredicates(stmt sqlast.Node) {
	forEachSelect(stmt, func(sel *sqlast.SelectStmt) {
		for _, fe := range fromEntries(sel) {
			if tr.Info.IsTemporalTable(fe.Name) {
				sel.Where = andExpr(sel.Where, currentOverlap(fe.Alias))
				if tr.isBitemporalTable(fe.Name) {
					sel.Where = andExpr(sel.Where, ttCurrentOverlap(fe.Alias))
				}
			}
		}
	})
}

func (tr *Translator) translateCurrent(body sqlast.Stmt) (*Translation, error) {
	switch body.(type) {
	case *sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt,
		*sqlast.DropTableStmt, *sqlast.DropViewStmt, *sqlast.DropRoutineStmt,
		*sqlast.AlterAddValidTime:
		// Definitions are stored as written — the invocation context
		// determines routine semantics later (§IV-A) — and schema
		// statements pass through.
		return &Translation{Main: sqlast.CloneStmt(body)}, nil
	}
	a, err := tr.analyze(body)
	if err != nil {
		return nil, err
	}
	if err := tr.checkNoInnerModifiers(a); err != nil {
		return nil, err
	}
	out := &Translation{Strategy: StrategyAuto, TemporalTables: a.temporalTables}

	// curr_ clones for every reachable temporal routine; non-temporal
	// routines are used unchanged (the compile-time optimization).
	for _, rn := range a.routines {
		if !a.temporalRoutine(rn) {
			continue
		}
		def := sqlast.CloneStmt(a.routineDef[strings.ToLower(rn)])
		switch d := def.(type) {
		case *sqlast.CreateFunctionStmt:
			d.Name = "curr_" + d.Name
			d.Replace = true
		case *sqlast.CreateProcedureStmt:
			d.Name = "curr_" + d.Name
			d.Replace = true
		}
		tr.addCurrentPredicates(def)
		renameCalls(def, a, "curr_", a.temporalRoutine)
		out.Routines = append(out.Routines, def)
	}

	main := sqlast.CloneStmt(body)
	renameCalls(main, a, "curr_", a.temporalRoutine)

	switch m := main.(type) {
	case *sqlast.SelectStmt, *sqlast.SetOpExpr, *sqlast.CompoundStmt, *sqlast.CallStmt:
		tr.addCurrentPredicates(m)
		out.Main = m
	case *sqlast.InsertStmt:
		return tr.currentInsert(out, m)
	case *sqlast.UpdateStmt:
		return tr.currentUpdate(out, m)
	case *sqlast.DeleteStmt:
		return tr.currentDelete(out, m)
	case *sqlast.CreateViewStmt:
		tr.addCurrentPredicates(m)
		out.Main = m
	default:
		// DDL and other statements pass through.
		tr.addCurrentPredicates(m)
		out.Main = m
	}
	return out, nil
}

// currentInsert extends inserted rows with [CURRENT_DATE, forever) —
// once per period pair on bitemporal tables.
func (tr *Translator) currentInsert(out *Translation, ins *sqlast.InsertStmt) (*Translation, error) {
	if !tr.Info.IsTemporalTable(ins.Table) {
		tr.addCurrentPredicates(ins)
		out.Main = ins
		return out, nil
	}
	pairs := 1
	if tr.isBitemporalTable(ins.Table) {
		pairs = 2
	}
	if len(ins.Cols) > 0 {
		ins.Cols = append(ins.Cols, "begin_time", "end_time")
		if pairs == 2 {
			ins.Cols = append(ins.Cols, "tt_begin_time", "tt_end_time")
		}
	}
	switch src := ins.Source.(type) {
	case *sqlast.ValuesExpr:
		for i := range src.Rows {
			for p := 0; p < pairs; p++ {
				src.Rows[i] = append(src.Rows[i], currentDate(), foreverLit())
			}
		}
	case *sqlast.SelectStmt:
		tr.addCurrentPredicates(src)
		src.Items = append(src.Items,
			sqlast.SelectItem{Expr: currentDate(), Alias: "begin_time"},
			sqlast.SelectItem{Expr: foreverLit(), Alias: "end_time"})
		if pairs == 2 {
			src.Items = append(src.Items,
				sqlast.SelectItem{Expr: currentDate(), Alias: "tt_begin_time"},
				sqlast.SelectItem{Expr: foreverLit(), Alias: "tt_end_time"})
		}
	default:
		return nil, fmt.Errorf("current INSERT into temporal table %s requires VALUES or SELECT source", ins.Table)
	}
	out.Main = ins
	return out, nil
}

// currentDelete closes the validity of currently valid matching rows:
// logical deletion preserves history.
func (tr *Translator) currentDelete(out *Translation, del *sqlast.DeleteStmt) (*Translation, error) {
	if !tr.Info.IsTemporalTable(del.Table) {
		tr.addCurrentPredicates(del)
		out.Main = del
		return out, nil
	}
	alias := del.Alias
	if alias == "" {
		alias = del.Table
	}
	if tr.isBitemporalTable(del.Table) {
		return tr.bitemporalCurrentDelete(out, del, alias)
	}
	where := andExpr(del.Where, currentOverlap(alias))
	out.Main = &sqlast.UpdateStmt{
		Table: del.Table, Alias: del.Alias,
		Sets:  []sqlast.SetClause{{Column: "end_time", Value: currentDate()}},
		Where: where,
	}
	return out, nil
}

// bitemporalCurrentDelete versions the belief instead of editing it:
// the still-valid past of each affected row is re-asserted with its
// validity clipped to [begin_time, CURRENT_DATE), same-day assertions
// vanish outright, and every other affected belief is closed at
// CURRENT_DATE. The audit history keeps what was believed before the
// deletion.
func (tr *Translator) bitemporalCurrentDelete(out *Translation, del *sqlast.DeleteStmt, alias string) (*Translation, error) {
	cols := tr.tableColumns(del.Table)
	if cols == nil {
		return nil, fmt.Errorf("unknown temporal table %s", del.Table)
	}
	dataCols := cols[:len(cols)-4]
	affected := andExpr(andExpr(sqlast.CloneExpr(del.Where), currentOverlap(alias)), ttCurrentOverlap(alias))

	// 1. Re-assert the surviving past with validity clipped at today.
	items := make([]sqlast.SelectItem, 0, len(cols))
	for _, c := range dataCols {
		items = append(items, sqlast.SelectItem{Expr: col(alias, c)})
	}
	items = append(items,
		sqlast.SelectItem{Expr: col(alias, "begin_time")},
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: foreverLit()})
	clip := &sqlast.InsertStmt{Table: del.Table, Source: &sqlast.SelectStmt{
		Items: items,
		From:  []sqlast.TableRef{&sqlast.BaseTable{Name: del.Table, Alias: alias}},
		Where: andExpr(sqlast.CloneExpr(affected),
			&sqlast.BinaryExpr{Op: "<", L: col(alias, "begin_time"), R: currentDate()}),
	}}
	// 2. Beliefs asserted today never existed as far as audit goes.
	vacuous := &sqlast.DeleteStmt{Table: del.Table, Alias: del.Alias,
		Where: andExpr(sqlast.CloneExpr(affected),
			&sqlast.BinaryExpr{Op: "=", L: col(alias, "tt_begin_time"), R: currentDate()})}
	// 3. Close the remaining affected beliefs.
	out.Setup = append(out.Setup, clip, vacuous)
	out.Main = &sqlast.UpdateStmt{
		Table: del.Table, Alias: del.Alias,
		Sets:  []sqlast.SetClause{{Column: "tt_end_time", Value: currentDate()}},
		Where: affected,
	}
	return out, nil
}

// currentUpdate inserts new versions valid from CURRENT_DATE and closes
// the old ones.
func (tr *Translator) currentUpdate(out *Translation, upd *sqlast.UpdateStmt) (*Translation, error) {
	if !tr.Info.IsTemporalTable(upd.Table) {
		tr.addCurrentPredicates(upd)
		out.Main = upd
		return out, nil
	}
	cols := tr.tableColumns(upd.Table)
	if cols == nil {
		return nil, fmt.Errorf("unknown temporal table %s", upd.Table)
	}
	alias := upd.Alias
	if alias == "" {
		alias = upd.Table
	}
	if tr.isBitemporalTable(upd.Table) {
		return tr.bitemporalCurrentUpdate(out, upd, cols, alias)
	}
	// Guard excludes rows inserted today so the close step doesn't
	// immediately terminate the new versions.
	guard := &sqlast.BinaryExpr{Op: "<", L: col(alias, "begin_time"), R: currentDate()}
	where := andExpr(andExpr(sqlast.CloneExpr(upd.Where), currentOverlap(alias)), guard)

	// 1. INSERT new versions built from the old rows with SET applied.
	items := make([]sqlast.SelectItem, 0, len(cols))
	for _, c := range cols[:len(cols)-2] { // data columns
		var e sqlast.Expr = col(alias, c)
		for _, sc := range upd.Sets {
			if strings.EqualFold(sc.Column, c) {
				e = sqlast.CloneExpr(sc.Value)
			}
		}
		items = append(items, sqlast.SelectItem{Expr: e})
	}
	items = append(items,
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: foreverLit()})
	insert := &sqlast.InsertStmt{Table: upd.Table, Source: &sqlast.SelectStmt{
		Items: items,
		From:  []sqlast.TableRef{&sqlast.BaseTable{Name: upd.Table, Alias: alias}},
		Where: sqlast.CloneExpr(where),
	}}

	// 2. Close the old versions.
	closeOld := &sqlast.UpdateStmt{
		Table: upd.Table, Alias: upd.Alias,
		Sets:  []sqlast.SetClause{{Column: "end_time", Value: currentDate()}},
		Where: where,
	}
	out.Setup = append(out.Setup, insert)
	out.Main = closeOld
	return out, nil
}

// bitemporalCurrentUpdate is the versioning form of currentUpdate: new
// versions valid from CURRENT_DATE are asserted, the still-valid past
// is re-asserted clipped at CURRENT_DATE, and the superseded beliefs
// are closed (or, if asserted today, removed outright) — the old
// versions remain queryable through the audit history.
func (tr *Translator) bitemporalCurrentUpdate(out *Translation, upd *sqlast.UpdateStmt, cols []string, alias string) (*Translation, error) {
	dataCols := cols[:len(cols)-4]
	guard := &sqlast.BinaryExpr{Op: "<", L: col(alias, "begin_time"), R: currentDate()}
	where := andExpr(andExpr(andExpr(sqlast.CloneExpr(upd.Where), currentOverlap(alias)),
		ttCurrentOverlap(alias)), guard)

	from := func() []sqlast.TableRef {
		return []sqlast.TableRef{&sqlast.BaseTable{Name: upd.Table, Alias: alias}}
	}
	// 1. Assert the new versions, valid from today, believed from today.
	newItems := make([]sqlast.SelectItem, 0, len(cols))
	for _, c := range dataCols {
		var e sqlast.Expr = col(alias, c)
		for _, sc := range upd.Sets {
			if strings.EqualFold(sc.Column, c) {
				e = sqlast.CloneExpr(sc.Value)
			}
		}
		newItems = append(newItems, sqlast.SelectItem{Expr: e})
	}
	newItems = append(newItems,
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: foreverLit()},
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: foreverLit()})
	insertNew := &sqlast.InsertStmt{Table: upd.Table, Source: &sqlast.SelectStmt{
		Items: newItems, From: from(), Where: sqlast.CloneExpr(where),
	}}

	// 2. Re-assert the unchanged past, clipped to [begin_time, today).
	oldItems := make([]sqlast.SelectItem, 0, len(cols))
	for _, c := range dataCols {
		oldItems = append(oldItems, sqlast.SelectItem{Expr: col(alias, c)})
	}
	oldItems = append(oldItems,
		sqlast.SelectItem{Expr: col(alias, "begin_time")},
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: foreverLit()})
	insertOld := &sqlast.InsertStmt{Table: upd.Table, Source: &sqlast.SelectStmt{
		Items: oldItems, From: from(), Where: sqlast.CloneExpr(where),
	}}

	// 3. Same-day assertions vanish; 4. everything else is closed.
	vacuous := &sqlast.DeleteStmt{Table: upd.Table, Alias: upd.Alias,
		Where: andExpr(sqlast.CloneExpr(where),
			&sqlast.BinaryExpr{Op: "=", L: col(alias, "tt_begin_time"), R: currentDate()})}
	out.Setup = append(out.Setup, insertNew, insertOld, vacuous)
	out.Main = &sqlast.UpdateStmt{
		Table: upd.Table, Alias: upd.Alias,
		Sets:  []sqlast.SetClause{{Column: "tt_end_time", Value: currentDate()}},
		Where: where,
	}
	return out, nil
}

// tableColumns returns a table's column names via the optional
// extended interface; nil when unavailable.
func (tr *Translator) tableColumns(name string) []string {
	if ci, ok := tr.Info.(interface{ TableColumns(string) []string }); ok {
		return ci.TableColumns(name)
	}
	return nil
}
