package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Current semantics (paper §IV-C): the statement behaves as a regular
// statement on the current timeslice. The transform adds
//
//	t.begin_time <= CURRENT_DATE AND CURRENT_DATE < t.end_time
//
// to every WHERE clause whose FROM mentions a temporal table — in the
// statement itself and in curr_-prefixed clones of every reachable
// temporal routine. Current modifications maintain validity periods.

func currentDate() sqlast.Expr { return &sqlast.FuncCall{Name: "CURRENT_DATE"} }

func foreverLit() sqlast.Expr {
	_, e := defaultContext()
	return e
}

// currentOverlap builds alias.begin_time <= CURRENT_DATE AND
// CURRENT_DATE < alias.end_time.
func currentOverlap(alias string) sqlast.Expr {
	return andExpr(
		&sqlast.BinaryExpr{Op: "<=", L: col(alias, "begin_time"), R: currentDate()},
		&sqlast.BinaryExpr{Op: "<", L: currentDate(), R: col(alias, "end_time")},
	)
}

// addCurrentPredicates adds the current-timeslice predicate for every
// temporal table in every SELECT under stmt.
func (tr *Translator) addCurrentPredicates(stmt sqlast.Node) {
	forEachSelect(stmt, func(sel *sqlast.SelectStmt) {
		for _, fe := range fromEntries(sel) {
			if tr.Info.IsTemporalTable(fe.Name) {
				sel.Where = andExpr(sel.Where, currentOverlap(fe.Alias))
			}
		}
	})
}

func (tr *Translator) translateCurrent(body sqlast.Stmt) (*Translation, error) {
	switch body.(type) {
	case *sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt,
		*sqlast.DropTableStmt, *sqlast.DropViewStmt, *sqlast.DropRoutineStmt,
		*sqlast.AlterAddValidTime:
		// Definitions are stored as written — the invocation context
		// determines routine semantics later (§IV-A) — and schema
		// statements pass through.
		return &Translation{Main: sqlast.CloneStmt(body)}, nil
	}
	a, err := tr.analyze(body)
	if err != nil {
		return nil, err
	}
	if err := tr.checkNoInnerModifiers(a); err != nil {
		return nil, err
	}
	out := &Translation{Strategy: StrategyAuto, TemporalTables: a.temporalTables}

	// curr_ clones for every reachable temporal routine; non-temporal
	// routines are used unchanged (the compile-time optimization).
	for _, rn := range a.routines {
		if !a.temporalRoutine(rn) {
			continue
		}
		def := sqlast.CloneStmt(a.routineDef[strings.ToLower(rn)])
		switch d := def.(type) {
		case *sqlast.CreateFunctionStmt:
			d.Name = "curr_" + d.Name
			d.Replace = true
		case *sqlast.CreateProcedureStmt:
			d.Name = "curr_" + d.Name
			d.Replace = true
		}
		tr.addCurrentPredicates(def)
		renameCalls(def, a, "curr_", a.temporalRoutine)
		out.Routines = append(out.Routines, def)
	}

	main := sqlast.CloneStmt(body)
	renameCalls(main, a, "curr_", a.temporalRoutine)

	switch m := main.(type) {
	case *sqlast.SelectStmt, *sqlast.SetOpExpr, *sqlast.CompoundStmt, *sqlast.CallStmt:
		tr.addCurrentPredicates(m)
		out.Main = m
	case *sqlast.InsertStmt:
		return tr.currentInsert(out, m)
	case *sqlast.UpdateStmt:
		return tr.currentUpdate(out, m)
	case *sqlast.DeleteStmt:
		return tr.currentDelete(out, m)
	case *sqlast.CreateViewStmt:
		tr.addCurrentPredicates(m)
		out.Main = m
	default:
		// DDL and other statements pass through.
		tr.addCurrentPredicates(m)
		out.Main = m
	}
	return out, nil
}

// currentInsert extends inserted rows with [CURRENT_DATE, forever).
func (tr *Translator) currentInsert(out *Translation, ins *sqlast.InsertStmt) (*Translation, error) {
	if !tr.Info.IsTemporalTable(ins.Table) {
		tr.addCurrentPredicates(ins)
		out.Main = ins
		return out, nil
	}
	if len(ins.Cols) > 0 {
		ins.Cols = append(ins.Cols, "begin_time", "end_time")
	}
	switch src := ins.Source.(type) {
	case *sqlast.ValuesExpr:
		for i := range src.Rows {
			src.Rows[i] = append(src.Rows[i], currentDate(), foreverLit())
		}
	case *sqlast.SelectStmt:
		tr.addCurrentPredicates(src)
		src.Items = append(src.Items,
			sqlast.SelectItem{Expr: currentDate(), Alias: "begin_time"},
			sqlast.SelectItem{Expr: foreverLit(), Alias: "end_time"})
	default:
		return nil, fmt.Errorf("current INSERT into temporal table %s requires VALUES or SELECT source", ins.Table)
	}
	out.Main = ins
	return out, nil
}

// currentDelete closes the validity of currently valid matching rows:
// logical deletion preserves history.
func (tr *Translator) currentDelete(out *Translation, del *sqlast.DeleteStmt) (*Translation, error) {
	if !tr.Info.IsTemporalTable(del.Table) {
		tr.addCurrentPredicates(del)
		out.Main = del
		return out, nil
	}
	alias := del.Alias
	if alias == "" {
		alias = del.Table
	}
	where := andExpr(del.Where, currentOverlap(alias))
	out.Main = &sqlast.UpdateStmt{
		Table: del.Table, Alias: del.Alias,
		Sets:  []sqlast.SetClause{{Column: "end_time", Value: currentDate()}},
		Where: where,
	}
	return out, nil
}

// currentUpdate inserts new versions valid from CURRENT_DATE and closes
// the old ones.
func (tr *Translator) currentUpdate(out *Translation, upd *sqlast.UpdateStmt) (*Translation, error) {
	if !tr.Info.IsTemporalTable(upd.Table) {
		tr.addCurrentPredicates(upd)
		out.Main = upd
		return out, nil
	}
	cols := tr.tableColumns(upd.Table)
	if cols == nil {
		return nil, fmt.Errorf("unknown temporal table %s", upd.Table)
	}
	alias := upd.Alias
	if alias == "" {
		alias = upd.Table
	}
	// Guard excludes rows inserted today so the close step doesn't
	// immediately terminate the new versions.
	guard := &sqlast.BinaryExpr{Op: "<", L: col(alias, "begin_time"), R: currentDate()}
	where := andExpr(andExpr(sqlast.CloneExpr(upd.Where), currentOverlap(alias)), guard)

	// 1. INSERT new versions built from the old rows with SET applied.
	items := make([]sqlast.SelectItem, 0, len(cols))
	for _, c := range cols[:len(cols)-2] { // data columns
		var e sqlast.Expr = col(alias, c)
		for _, sc := range upd.Sets {
			if strings.EqualFold(sc.Column, c) {
				e = sqlast.CloneExpr(sc.Value)
			}
		}
		items = append(items, sqlast.SelectItem{Expr: e})
	}
	items = append(items,
		sqlast.SelectItem{Expr: currentDate()},
		sqlast.SelectItem{Expr: foreverLit()})
	insert := &sqlast.InsertStmt{Table: upd.Table, Source: &sqlast.SelectStmt{
		Items: items,
		From:  []sqlast.TableRef{&sqlast.BaseTable{Name: upd.Table, Alias: alias}},
		Where: sqlast.CloneExpr(where),
	}}

	// 2. Close the old versions.
	closeOld := &sqlast.UpdateStmt{
		Table: upd.Table, Alias: upd.Alias,
		Sets:  []sqlast.SetClause{{Column: "end_time", Value: currentDate()}},
		Where: where,
	}
	out.Setup = append(out.Setup, insert)
	out.Main = closeOld
	return out, nil
}

// tableColumns returns a table's column names via the optional
// extended interface; nil when unavailable.
func (tr *Translator) tableColumns(name string) []string {
	if ci, ok := tr.Info.(interface{ TableColumns(string) []string }); ok {
		return ci.TableColumns(name)
	}
	return nil
}
