package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Maximally-fragmented slicing (paper §V): compute the constant periods
// of every reachable temporal table into a cp table, evaluate the
// original query once per constant period (by joining cp), and pass
// cp.begin_time into every reachable temporal routine, whose internal
// queries gain an overlaps-the-instant predicate. MAX always applies.

const (
	tsTable = "taupsm_ts"
	cpTable = "taupsm_cp"
	cpAlias = "cp"
)

// maxOverlap builds alias.bcol <= at AND at < alias.ecol — overlap
// with the beginning of the constant period, which suffices because
// nothing changes during a constant period (§V-B).
func maxOverlap(alias, bcol, ecol string, at sqlast.Expr) sqlast.Expr {
	return andExpr(
		&sqlast.BinaryExpr{Op: "<=", L: col(alias, bcol), R: sqlast.CloneExpr(at)},
		&sqlast.BinaryExpr{Op: "<", L: sqlast.CloneExpr(at), R: col(alias, ecol)},
	)
}

// addMaxPredicates adds the point-overlap predicate along dimension dim
// for every temporal table carrying it in every SELECT under stmt,
// evaluating at instant `at`. Tables carrying only the orthogonal
// dimension are the context-filter pass's job.
func (tr *Translator) addMaxPredicates(stmt sqlast.Node, at sqlast.Expr, dim sqlast.TemporalDimension) {
	forEachSelect(stmt, func(sel *sqlast.SelectStmt) {
		for _, fe := range fromEntries(sel) {
			if tr.Info.IsTemporalTable(fe.Name) && tr.carriesDim(fe.Name, dim) {
				bcol, ecol := tr.slicePeriodCols(fe.Name, dim)
				sel.Where = andExpr(sel.Where, maxOverlap(fe.Alias, bcol, ecol, at))
			}
		}
	})
}

// renameMaxCalls renames invocations of temporal routines to max_name
// and appends the slicing instant as an extra argument (§V-B, §V-C).
func renameMaxCalls(stmt sqlast.Stmt, a *analysis, at sqlast.Expr) {
	sqlast.MapExprs(stmt, func(e sqlast.Expr) sqlast.Expr {
		if fc, ok := e.(*sqlast.FuncCall); ok && a.temporalRoutine(fc.Name) {
			fc.Name = "max_" + fc.Name
			fc.Args = append(fc.Args, sqlast.CloneExpr(at))
		}
		return e
	})
	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		if cs, ok := n.(*sqlast.CallStmt); ok && a.temporalRoutine(cs.Name) {
			cs.Name = "max_" + cs.Name
			cs.Args = append(cs.Args, sqlast.CloneExpr(at))
		}
		return true
	})
}

// maxRoutine produces the max_ clone of a temporal routine: an extra
// begin_time_in parameter, point-overlap predicates on its queries, and
// the instant propagated to nested temporal routines. Tables carrying
// the orthogonal dimension are pinned to the default (current) context
// — clone names are deterministic, so per-statement context literals
// cannot be embedded.
func (tr *Translator) maxRoutine(a *analysis, name string, dim sqlast.TemporalDimension) sqlast.Stmt {
	at := &sqlast.ColumnRef{Column: "begin_time_in"}
	def := sqlast.CloneStmt(a.routineDef[strings.ToLower(name)])
	param := sqlast.ParamDef{Name: "begin_time_in", Type: sqlast.TypeName{Base: "DATE"}}
	switch d := def.(type) {
	case *sqlast.CreateFunctionStmt:
		d.Name = "max_" + d.Name
		d.Params = append(d.Params, param)
		d.Replace = true
	case *sqlast.CreateProcedureStmt:
		d.Name = "max_" + d.Name
		d.Params = append(d.Params, param)
		d.Replace = true
	}
	tr.addMaxPredicates(def, at, dim)
	tr.addContextFilters(def, dim, nil, nil)
	renameMaxCalls(def, a, at)
	return def
}

// constantPeriodSetup emits the Figure-8 SQL that materializes the
// time-point table ts and the constant-period table cp for the given
// temporal tables over context [begin, end), collecting the period
// pair of dimension dim from each table.
func (tr *Translator) constantPeriodSetup(tables []string, begin, end sqlast.Expr, dim sqlast.TemporalDimension) (setup, teardown []sqlast.Stmt) {
	setup = append(setup,
		&sqlast.DropTableStmt{Name: tsTable, IfExists: true},
		&sqlast.DropTableStmt{Name: cpTable, IfExists: true},
		&sqlast.CreateTableStmt{Name: tsTable, Temporary: true,
			Cols: []sqlast.ColumnDef{{Name: "time_point", Type: sqlast.TypeName{Base: "DATE"}}}},
	)

	// INSERT INTO ts SELECT begin_time FROM t1 UNION SELECT end_time
	// FROM t1 UNION ... UNION VALUES (P1), (P2)
	var union sqlast.QueryExpr
	addSel := func(q sqlast.QueryExpr) {
		if union == nil {
			union = q
		} else {
			union = &sqlast.SetOpExpr{Op: "UNION", L: union, R: q}
		}
	}
	for _, t := range tables {
		bcol, ecol := tr.slicePeriodCols(t, dim)
		for _, c := range []string{bcol, ecol} {
			addSel(&sqlast.SelectStmt{
				Items: []sqlast.SelectItem{{Expr: col("", c), Alias: "time_point"}},
				From:  []sqlast.TableRef{&sqlast.BaseTable{Name: t}},
			})
		}
	}
	addSel(&sqlast.ValuesExpr{Rows: [][]sqlast.Expr{
		{sqlast.CloneExpr(begin)}, {sqlast.CloneExpr(end)},
	}})
	setup = append(setup, &sqlast.InsertStmt{Table: tsTable, Source: union})

	// CREATE TEMPORARY TABLE cp AS (self-join with NOT EXISTS): the
	// adjacent pairs of time points within the context.
	tp := func(alias string) sqlast.Expr { return col(alias, "time_point") }
	where := andExpr(
		&sqlast.BinaryExpr{Op: "<", L: tp("ts1"), R: tp("ts2")},
		andExpr(
			&sqlast.BinaryExpr{Op: "<=", L: sqlast.CloneExpr(begin), R: tp("ts1")},
			andExpr(
				&sqlast.BinaryExpr{Op: "<", L: tp("ts1"), R: sqlast.CloneExpr(end)},
				&sqlast.BinaryExpr{Op: "<=", L: tp("ts2"), R: sqlast.CloneExpr(end)},
			),
		),
	)
	notExists := &sqlast.ExistsExpr{Not: true, Sub: &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: col("", "time_point")}},
		From:  []sqlast.TableRef{&sqlast.BaseTable{Name: tsTable, Alias: "ts3"}},
		Where: andExpr(
			&sqlast.BinaryExpr{Op: "<", L: tp("ts1"), R: tp("ts3")},
			&sqlast.BinaryExpr{Op: "<", L: tp("ts3"), R: tp("ts2")},
		),
	}}
	cpQuery := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{
			{Expr: tp("ts1"), Alias: "begin_time"},
			{Expr: tp("ts2"), Alias: "end_time"},
		},
		From: []sqlast.TableRef{
			&sqlast.BaseTable{Name: tsTable, Alias: "ts1"},
			&sqlast.BaseTable{Name: tsTable, Alias: "ts2"},
		},
		Where: andExpr(where, notExists),
	}
	setup = append(setup, &sqlast.CreateTableStmt{Name: cpTable, Temporary: true, AsQuery: cpQuery, WithData: true})

	teardown = append(teardown,
		&sqlast.DropTableStmt{Name: tsTable, IfExists: true},
		&sqlast.DropTableStmt{Name: cpTable, IfExists: true},
	)
	return setup, teardown
}

func (tr *Translator) maxSlice(body sqlast.Stmt, begin, end sqlast.Expr, dim sqlast.TemporalDimension, ctxBegin, ctxEnd sqlast.Expr) (*Translation, error) {
	switch body.(type) {
	case *sqlast.InsertStmt, *sqlast.UpdateStmt, *sqlast.DeleteStmt:
		return tr.sequencedDML(body, begin, end, StrategyMax, dim, ctxBegin, ctxEnd)
	}
	a, err := tr.analyzeDim(body, dim)
	if err != nil {
		return nil, err
	}
	if err := tr.checkNoInnerModifiers(a); err != nil {
		return nil, err
	}
	if err := tr.checkExplicitContext(a, dim, ctxBegin); err != nil {
		return nil, err
	}
	out := &Translation{
		Strategy: StrategyMax, Dim: dim, ContextBegin: begin, ContextEnd: end,
		TemporalTables: a.temporalTables,
	}

	if _, ok := body.(sqlast.QueryExpr); !ok {
		return nil, fmt.Errorf("maximally-fragmented slicing: unsupported statement %T under %s", body, dim.Keyword())
	}

	// Sequenced query over no table carrying the sliced dimension: after
	// the context filter pins any orthogonal-dimension tables, the
	// result holds over the whole context.
	if len(a.temporalTables) == 0 {
		main := sqlast.CloneStmt(body).(sqlast.QueryExpr)
		tr.addContextFilters(main, dim, ctxBegin, ctxEnd)
		prependPeriodItems(main, sqlast.CloneExpr(begin), sqlast.CloneExpr(end))
		out.Main = main.(sqlast.Stmt)
		return out, nil
	}

	for _, rn := range a.routines {
		if a.temporalRoutine(rn) {
			out.Routines = append(out.Routines, tr.maxRoutine(a, rn, dim))
		}
	}

	out.Setup, out.Teardown = tr.constantPeriodSetup(a.temporalTables, begin, end, dim)
	out.NeedsConstantPeriods = true

	main := sqlast.CloneStmt(body)
	at := col(cpAlias, "begin_time")

	// Every SELECT (including subqueries) evaluates at the instant
	// cp.begin_time; subqueries reference cp through correlation. Tables
	// carrying only the orthogonal dimension (and the orthogonal pair of
	// bitemporal tables) are pinned to the secondary context instead.
	tr.addMaxPredicates(main, at, dim)
	tr.addContextFilters(main, dim, ctxBegin, ctxEnd)
	renameMaxCalls(main, a, at)

	// The outermost SELECT block(s) additionally join cp and return
	// the constant period as the row timestamp.
	addCpToTopSelects(main.(sqlast.QueryExpr))

	out.Main = main
	return out, nil
}

// addCpToTopSelects joins cp into the top-level SELECT block(s) of a
// query tree and prepends cp.begin_time/cp.end_time to the select list.
// Aggregating selects additionally group by the constant period so each
// period aggregates its own timeslice (sequenced aggregation).
func addCpToTopSelects(q sqlast.QueryExpr) {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		// cp goes first so lateral table functions taking
		// cp.begin_time as an argument can see it in scope.
		x.From = append([]sqlast.TableRef{&sqlast.BaseTable{Name: cpTable, Alias: cpAlias}}, x.From...)
		x.Items = append([]sqlast.SelectItem{
			{Expr: col(cpAlias, "begin_time"), Alias: "begin_time"},
			{Expr: col(cpAlias, "end_time"), Alias: "end_time"},
		}, x.Items...)
		if len(x.GroupBy) > 0 || hasAggregates(x) {
			x.GroupBy = append(x.GroupBy,
				col(cpAlias, "begin_time"), col(cpAlias, "end_time"))
		}
	case *sqlast.SetOpExpr:
		addCpToTopSelects(x.L)
		addCpToTopSelects(x.R)
	}
}

// hasAggregates reports aggregate function calls in the select list or
// HAVING clause, not descending into subqueries.
func hasAggregates(sel *sqlast.SelectStmt) bool {
	found := false
	visit := func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			return false
		case *sqlast.FuncCall:
			switch strings.ToUpper(x.Name) {
			case "COUNT", "SUM", "AVG", "MIN", "MAX":
				found = true
			}
		}
		return !found
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			sqlast.Walk(it.Expr, visit)
		}
	}
	if sel.Having != nil {
		sqlast.Walk(sel.Having, visit)
	}
	return found
}

// prependPeriodItems prepends constant begin/end items to the select
// list(s) of a query tree.
func prependPeriodItems(q sqlast.QueryExpr, begin, end sqlast.Expr) {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		x.Items = append([]sqlast.SelectItem{
			{Expr: sqlast.CloneExpr(begin), Alias: "begin_time"},
			{Expr: sqlast.CloneExpr(end), Alias: "end_time"},
		}, x.Items...)
	case *sqlast.SetOpExpr:
		prependPeriodItems(x.L, begin, end)
		prependPeriodItems(x.R, begin, end)
	}
}
