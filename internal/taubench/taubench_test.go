package taubench

import (
	"errors"
	"strings"
	"testing"

	"taupsm"
)

// tinySpec is a fast dataset for tests: few entities, few slices, but
// exercising every change kind.
func tinySpec() Spec {
	return Spec{Name: "DS1", Size: Small,
		Items: 30, Authors: 20, Publishers: 8,
		Slices: 10, StepDays: 7, ChangesPerStep: 6, Seed: 7}
}

var tinyRunner *Runner

func getRunner(t testing.TB) *Runner {
	t.Helper()
	if tinyRunner == nil {
		r, err := NewRunner(tinySpec())
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		tinyRunner = r
	}
	return tinyRunner
}

func TestLoadProducesHistory(t *testing.T) {
	r := getRunner(t)
	if r.Stats.Rows <= 30+20+8 {
		t.Fatalf("expected version history beyond initial rows, got %d rows", r.Stats.Rows)
	}
	if r.Stats.Changes == 0 {
		t.Fatal("no changes simulated")
	}
	// every temporal table must have valid periods
	for _, name := range []string{"item", "author", "publisher", "related_items", "item_author", "item_publisher"} {
		res, err := r.DB.Query(`NONSEQUENCED VALIDTIME SELECT COUNT(*) FROM ` + name + ` WHERE begin_time >= end_time`)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rows[0][0].Int() != 0 {
			t.Fatalf("table %s has empty or inverted periods", name)
		}
	}
}

// Every query must run under current semantics.
func TestAllQueriesCurrent(t *testing.T) {
	r := getRunner(t)
	for _, q := range Queries() {
		if _, err := r.RunCurrent(q); err != nil {
			t.Errorf("%s current: %v", q.Name, err)
		}
	}
}

// Every query must run sequenced under MAX.
func TestAllQueriesSequencedMax(t *testing.T) {
	r := getRunner(t)
	for _, q := range Queries() {
		m := r.RunSequenced(q, taupsm.Max, 30)
		if m.Err != nil {
			t.Errorf("%s MAX: %v", q.Name, m.Err)
		}
	}
}

// Every query except q17b must run sequenced under PERST; q17b must
// fail with the non-nested FETCH error.
func TestAllQueriesSequencedPerst(t *testing.T) {
	r := getRunner(t)
	for _, q := range Queries() {
		m := r.RunSequenced(q, taupsm.PerStatement, 30)
		if q.PerstOK {
			if m.Err != nil {
				t.Errorf("%s PERST: %v", q.Name, m.Err)
			}
		} else {
			if m.Err == nil {
				t.Errorf("%s: expected PERST to be inapplicable", q.Name)
			} else if !errors.Is(m.Err, taupsm.ErrNotTransformable) {
				t.Errorf("%s: expected ErrNotTransformable, got %v", q.Name, m.Err)
			} else if !strings.Contains(m.Err.Error(), "non-nested FETCH") {
				t.Errorf("%s: expected non-nested FETCH diagnosis, got %v", q.Name, m.Err)
			}
		}
	}
}

// Commutativity (§VII-B) for both strategies on every query.
func TestCommutativityMax(t *testing.T) {
	r := getRunner(t)
	days := SampleDays(61)
	for _, q := range Queries() {
		if err := r.CheckCommutativity(q, taupsm.Max, days); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestCommutativityPerst(t *testing.T) {
	r := getRunner(t)
	days := SampleDays(61)
	for _, q := range Queries() {
		if !q.PerstOK {
			continue
		}
		if err := r.CheckCommutativity(q, taupsm.PerStatement, days); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestStrategiesAgree(t *testing.T) {
	r := getRunner(t)
	days := SampleDays(61)
	for _, q := range Queries() {
		if !q.PerstOK {
			continue
		}
		if err := r.CheckStrategiesAgree(q, days); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// Every benchmark query must return rows on the benchmark datasets —
// the paper adjusted q2 precisely because an empty result set lets the
// DBMS shortcut and invalidates the measurement (§VII-B).
func TestQueriesNonEmptyOnBenchmarkData(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping dataset generation in -short mode")
	}
	r, err := NewRunner(DS1(Small))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		cur, err := r.RunCurrent(q)
		if err != nil {
			t.Errorf("%s current: %v", q.Name, err)
			continue
		}
		if len(cur.Rows) == 0 {
			t.Errorf("%s: current result is empty on DS1-SMALL", q.Name)
		}
		m := r.RunSequenced(q, taupsm.Max, 365)
		if m.Err != nil {
			t.Errorf("%s sequenced: %v", q.Name, m.Err)
		} else if m.Rows == 0 {
			t.Errorf("%s: sequenced result is empty on DS1-SMALL", q.Name)
		}
	}
}

func TestCodeExpansion(t *testing.T) {
	r := getRunner(t)
	es, err := CodeExpansion(r.DB)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 16 {
		t.Fatalf("expected 16 queries, got %d", len(es))
	}
	var to, tm, tp int
	for _, e := range es {
		if e.MaxLoC <= e.OriginalLoC {
			t.Errorf("%s: MAX translation (%d LoC) should exceed original (%d LoC)", e.Query, e.MaxLoC, e.OriginalLoC)
		}
		to += e.OriginalLoC
		tm += e.MaxLoC
		tp += e.PerstLoC
	}
	// The paper reports ~3.2x (MAX) and ~4x (PERST) total expansion.
	// Our MAX totals include the per-query Figure-8 cp setup, so the
	// robust directional claims are: both expand at least 2x, and the
	// complex (cursor/loop) routines expand more under PERST than MAX.
	if tm < 2*to {
		t.Errorf("MAX expansion ratio %.1fx below expectation", float64(tm)/float64(to))
	}
	_ = tp
	for _, e := range es {
		switch e.Query {
		case "q7", "q7b", "q11", "q17":
			if e.PerstLoC <= e.MaxLoC {
				t.Errorf("%s: PERST (%d LoC) should exceed MAX (%d LoC) for cursor-based routines",
					e.Query, e.PerstLoC, e.MaxLoC)
			}
		}
	}
}

func TestClassify(t *testing.T) {
	// synthetic measurements: PERST always faster => class A
	ms := []Measurement{
		{Query: "qx", Strategy: taupsm.Max, Context: 1, Elapsed: 10},
		{Query: "qx", Strategy: taupsm.PerStatement, Context: 1, Elapsed: 5},
		{Query: "qx", Strategy: taupsm.Max, Context: 7, Elapsed: 10},
		{Query: "qx", Strategy: taupsm.PerStatement, Context: 7, Elapsed: 5},
	}
	if c := Classify(ms, "qx"); c != "A" {
		t.Fatalf("want class A, got %s", c)
	}
	// MAX first, PERST later => B
	ms = []Measurement{
		{Query: "qy", Strategy: taupsm.Max, Context: 1, Elapsed: 5},
		{Query: "qy", Strategy: taupsm.PerStatement, Context: 1, Elapsed: 10},
		{Query: "qy", Strategy: taupsm.Max, Context: 365, Elapsed: 20},
		{Query: "qy", Strategy: taupsm.PerStatement, Context: 365, Elapsed: 10},
	}
	if c := Classify(ms, "qy"); c != "B" {
		t.Fatalf("want class B, got %s", c)
	}
}

func TestCollectHeuristicPoints(t *testing.T) {
	r := getRunner(t)
	ms := []Measurement{
		{Dataset: "DS1", Size: Small, Query: "q2", Strategy: taupsm.Max, Context: 365, Elapsed: 100},
		{Dataset: "DS1", Size: Small, Query: "q2", Strategy: taupsm.PerStatement, Context: 365, Elapsed: 10},
		{Dataset: "DS1", Size: Small, Query: "q17b", Strategy: taupsm.Max, Context: 365, Elapsed: 50},
		{Dataset: "DS1", Size: Small, Query: "q17b", Strategy: taupsm.PerStatement, Context: 365,
			Err: taupsm.ErrNotTransformable},
	}
	pts := CollectHeuristicPoints(ms, func(Measurement) *Runner { return r })
	if len(pts) != 2 {
		t.Fatalf("expected 2 points, got %d", len(pts))
	}
	if pts[0].Winner != taupsm.PerStatement {
		t.Fatalf("q2 winner: %v", pts[0].Winner)
	}
	// q17b: PERST inapplicable, so MAX wins and the heuristic must
	// choose MAX (clause a).
	if pts[1].Winner != taupsm.Max || pts[1].Chosen != taupsm.Max {
		t.Fatalf("q17b point: winner=%v chosen=%v", pts[1].Winner, pts[1].Chosen)
	}
	out := HeuristicEval(pts)
	if !strings.Contains(out, "data points:          2") {
		t.Fatalf("eval rendering: %s", out)
	}
}

func TestContextLabel(t *testing.T) {
	for days, want := range map[int]string{1: "1d", 7: "1w", 30: "1m", 365: "1y", 90: "90d"} {
		if got := ContextLabel(days); got != want {
			t.Errorf("ContextLabel(%d) = %q, want %q", days, got, want)
		}
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"DS1", "DS2", "DS3"} {
		spec, err := SpecByName(name, Medium)
		if err != nil || spec.Name != name || spec.Size != Medium {
			t.Errorf("SpecByName(%s): %+v, %v", name, spec, err)
		}
	}
	if _, err := SpecByName("DS4", Small); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if DS3(Small).Slices != 693 || DS1(Small).Slices != 104 {
		t.Error("slice counts must match the paper")
	}
	// DS3 keeps roughly DS1's total change count with ~6.7x the slices
	d1 := DS1(Small).Slices * DS1(Small).ChangesPerStep
	d3 := DS3(Small).Slices * DS3(Small).ChangesPerStep
	ratio := float64(d3) / float64(d1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("DS3 total changes (%d) should approximate DS1's (%d)", d3, d1)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec := tinySpec()
	r1, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Rows != r2.Stats.Rows || r1.Stats.Changes != r2.Stats.Changes {
		t.Fatalf("generation must be deterministic: %+v vs %+v", r1.Stats, r2.Stats)
	}
	a, _ := r1.DB.Query(`NONSEQUENCED VALIDTIME SELECT COUNT(*) FROM item`)
	b, _ := r2.DB.Query(`NONSEQUENCED VALIDTIME SELECT COUNT(*) FROM item`)
	if a.Rows[0][0].Int() != b.Rows[0][0].Int() {
		t.Fatal("row counts differ across identical seeds")
	}
}

func TestHotSpotSkew(t *testing.T) {
	// DS2's Gaussian targeting must concentrate item versions near the
	// middle of the id space relative to DS1.
	countMiddleVersions := func(spec Spec) int64 {
		r, err := NewRunner(spec)
		if err != nil {
			t.Fatal(err)
		}
		mid := spec.Items / 2
		res, err := r.DB.Query(`NONSEQUENCED VALIDTIME SELECT COUNT(*) FROM item
			WHERE item_id = 'i` + itoa(mid) + `' OR item_id = 'i` + itoa(mid+1) + `' OR item_id = 'i` + itoa(mid-1) + `'`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].Int()
	}
	uniform := countMiddleVersions(DS1(Small))
	skewed := countMiddleVersions(DS2(Small))
	if skewed <= uniform {
		t.Fatalf("hot-spot dataset should version middle items more: DS1=%d DS2=%d", uniform, skewed)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
