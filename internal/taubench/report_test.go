package taubench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"taupsm"
)

func queryByName(t *testing.T, name string) Query {
	t.Helper()
	for _, q := range Queries() {
		if q.Name == name {
			return q
		}
	}
	t.Fatalf("no query %s", name)
	return Query{}
}

func TestMeasureRepeated(t *testing.T) {
	r := getRunner(t)
	q := queryByName(t, "q20")

	stat := r.MeasureRepeated(q, taupsm.Max, 30, 3)
	if stat.Error != "" {
		t.Fatalf("unexpected error: %s", stat.Error)
	}
	if stat.Query != "q20" || stat.Strategy != "MAX" || stat.ContextDays != 30 || stat.Reps != 3 {
		t.Fatalf("bad cell identity: %+v", stat)
	}
	if stat.MedianNS <= 0 || stat.P95NS < stat.MedianNS {
		t.Fatalf("bad quantiles: median=%d p95=%d", stat.MedianNS, stat.P95NS)
	}
	if stat.Fragments <= 0 || stat.ConstantPeriods <= 0 {
		t.Fatalf("missing slicing stats: %+v", stat)
	}

	ps := r.MeasureRepeated(q, taupsm.PerStatement, 30, 2)
	if ps.Error != "" {
		t.Fatalf("unexpected error: %s", ps.Error)
	}
	if ps.ConstantPeriods != 0 {
		t.Fatalf("PERST computes no constant periods, got %d", ps.ConstantPeriods)
	}
	if ps.Fragments != stat.Fragments {
		t.Fatalf("fragments differ by strategy: %d vs %d", ps.Fragments, stat.Fragments)
	}
}

// q17b is not per-statement transformable: the cell must carry the
// error instead of numbers.
func TestMeasureRepeatedError(t *testing.T) {
	r := getRunner(t)
	stat := r.MeasureRepeated(queryByName(t, "q17b"), taupsm.PerStatement, 7, 2)
	if stat.Error == "" {
		t.Fatal("expected a strategy-not-applicable error")
	}
	if stat.MedianNS != 0 {
		t.Fatalf("errored cell has latency: %+v", stat)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := getRunner(t)
	rep := r.BuildReport([]int{7}, 1)
	if rep.Dataset != "DS1" || rep.Size != "SMALL" || rep.TemporalRows == 0 {
		t.Fatalf("bad report header: %+v", rep)
	}
	// every query appears under both strategies
	if want := 2 * len(Queries()); len(rep.Queries) != want {
		t.Fatalf("report has %d cells, want %d", len(rep.Queries), want)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Queries) != len(rep.Queries) || back.Generated == "" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestSlowQueryLog(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	r.SlowThreshold, r.SlowLog = time.Nanosecond, &buf
	defer func() { r.SlowThreshold, r.SlowLog = 0, nil }()

	m := r.RunSequenced(queryByName(t, "q20"), taupsm.Max, 7)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	line := buf.String()
	if !strings.Contains(line, "slow query:") || !strings.Contains(line, "q20") ||
		!strings.Contains(line, "strategy=MAX") || !strings.Contains(line, "context=1w") {
		t.Fatalf("bad slow-query log line: %q", line)
	}

	// Below the threshold nothing is logged.
	buf.Reset()
	r.SlowThreshold = time.Hour
	if r.RunSequenced(queryByName(t, "q20"), taupsm.Max, 7); buf.Len() != 0 {
		t.Fatalf("unexpected slow log: %q", buf.String())
	}
}
