package taubench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"taupsm"
	"taupsm/internal/types"
)

// Runner holds a loaded τPSM database ready to execute benchmark
// queries.
type Runner struct {
	DB    *taupsm.DB
	Stats *LoadStats

	// SlowThreshold, when positive and SlowLog is set, logs every
	// sequenced measurement at least this slow to SlowLog.
	SlowThreshold time.Duration
	SlowLog       io.Writer
}

// Parallelism, when positive, sets the fragment worker-pool size of
// every database NewRunner opens (the taubench -par flag); zero keeps
// the library default (GOMAXPROCS).
var Parallelism int

// StrategyFilter restricts which slicing strategies the sweep-style
// experiments (ContextSweep, BuildReport, BuildObsReport, -exp sweep)
// measure: "max", "perst", or "" for both — the taubench -strategy
// flag. Artifacts built under different filters still compare
// cell-by-cell; the missing strategy's cells just show up as
// only-in-one-side.
var StrategyFilter string

// strategyEnabled reports whether the filter admits strategy s.
func strategyEnabled(s taupsm.Strategy) bool {
	switch strings.ToLower(StrategyFilter) {
	case "max":
		return s == taupsm.Max
	case "perst":
		return s == taupsm.PerStatement
	}
	return true
}

// NewRunner creates a database, generates the dataset, installs the
// routines of every benchmark query, and ANALYZEs the stored tables so
// the statistics registry carries interval distributions — the
// executor's sweep-vs-probe join choice and the stratum's estimate
// rows read them, exactly as a tuned production database would run
// after bulk load.
func NewRunner(spec Spec) (*Runner, error) {
	db := taupsm.Open()
	db.SetNow(2011, 1, 1) // mid-timeline "now" for current queries
	if Parallelism > 0 {
		db.SetParallelism(Parallelism)
	}
	stats, err := Load(db, spec)
	if err != nil {
		return nil, err
	}
	for _, q := range Queries() {
		if _, err := db.Exec(q.Routines); err != nil {
			return nil, fmt.Errorf("%s routines: %w", q.Name, err)
		}
	}
	if _, err := db.Exec("ANALYZE"); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return &Runner{DB: db, Stats: stats}, nil
}

// Contexts used by the paper's Figures 12-13: one day, week, month,
// year.
var ContextLengths = []int{1, 7, 30, 365}

// ContextLabel names a context length as in the paper's x-axes.
func ContextLabel(days int) string {
	switch days {
	case 1:
		return "1d"
	case 7:
		return "1w"
	case 30:
		return "1m"
	case 365:
		return "1y"
	}
	return fmt.Sprintf("%dd", days)
}

// SequencedSQL is the sequenced benchmark statement for one query and
// context length; exported so the stratum's property tests can run the
// exact statements the benchmark measures.
func SequencedSQL(q Query, contextDays int) string { return sequencedSQL(q, contextDays) }

// sequencedSQL builds the VALIDTIME query with an explicit temporal
// context of the given length starting at the timeline start.
func sequencedSQL(q Query, contextDays int) string {
	begin := types.FormatDate(timelineStart)
	end := types.FormatDate(timelineStart + int64(contextDays))
	return fmt.Sprintf("VALIDTIME (DATE '%s', DATE '%s') %s", begin, end, q.Text)
}

// Measurement is one benchmark data point.
type Measurement struct {
	Dataset  string
	Size     Size
	Query    string
	Strategy taupsm.Strategy
	Context  int // days
	Elapsed  time.Duration
	Rows     int
	Calls    int64 // stored-routine invocations
	Err      error // non-nil when the strategy does not apply (q17b/PERST)
}

// RunSequenced executes one sequenced benchmark query under the given
// strategy and context length.
func (r *Runner) RunSequenced(q Query, strategy taupsm.Strategy, contextDays int) Measurement {
	m := Measurement{
		Dataset: r.Stats.Spec.Name, Size: r.Stats.Spec.Size,
		Query: q.Name, Strategy: strategy, Context: contextDays,
	}
	sql := sequencedSQL(q, contextDays)
	r.DB.SetStrategy(strategy)
	defer r.DB.SetStrategy(taupsm.Auto)
	callsBefore := r.DB.Engine().Stats.RoutineCalls
	start := time.Now()
	res, err := r.DB.Query(sql)
	m.Elapsed = time.Since(start)
	m.Calls = r.DB.Engine().Stats.RoutineCalls - callsBefore
	if err != nil {
		m.Err = err
	} else {
		m.Rows = len(res.Rows)
	}
	if r.SlowLog != nil && r.SlowThreshold > 0 && m.Elapsed >= r.SlowThreshold {
		fmt.Fprintln(r.SlowLog, SlowLogLine(m))
	}
	return m
}

// RunCurrent executes the query's current (unmodified) variant.
func (r *Runner) RunCurrent(q Query) (*taupsm.Result, error) {
	return r.DB.Query(q.Text)
}

// ContextSweep measures every query at every context length under both
// strategies (Figures 12 and 13), or the single one StrategyFilter
// selects.
func (r *Runner) ContextSweep(contexts []int) []Measurement {
	var out []Measurement
	for _, q := range Queries() {
		for _, c := range contexts {
			for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
				if strategyEnabled(s) {
					out = append(out, r.RunSequenced(q, s, c))
				}
			}
		}
	}
	return out
}

// Classify derives the paper's Figure-12 query classes from a context
// sweep: A = PERST always faster, B = crossover (MAX first), C = MAX
// always faster, D = MAX first and still ahead (or tied) at the longest
// context.
func Classify(ms []Measurement, query string) string {
	type point struct{ max, ps time.Duration }
	byCtx := map[int]*point{}
	var ctxs []int
	for _, m := range ms {
		if m.Query != query || m.Err != nil {
			continue
		}
		p := byCtx[m.Context]
		if p == nil {
			p = &point{}
			byCtx[m.Context] = p
			ctxs = append(ctxs, m.Context)
		}
		if m.Strategy == taupsm.Max {
			p.max = m.Elapsed
		} else {
			p.ps = m.Elapsed
		}
	}
	sort.Ints(ctxs)
	if len(ctxs) == 0 {
		return "-"
	}
	perstWins := make([]bool, len(ctxs))
	complete := true
	for i, c := range ctxs {
		p := byCtx[c]
		if p.max == 0 || p.ps == 0 {
			complete = false
			break
		}
		perstWins[i] = p.ps < p.max
	}
	if !complete {
		return "-"
	}
	allPS, allMax := true, true
	for _, w := range perstWins {
		if w {
			allMax = false
		} else {
			allPS = false
		}
	}
	switch {
	case allPS:
		return "A"
	case allMax:
		return "C"
	case !perstWins[0] && perstWins[len(perstWins)-1]:
		return "B"
	default:
		return "D"
	}
}

// FormatTable renders measurements as the rows of one figure: one line
// per (query, context/size/dataset) with MAX and PERST times side by
// side, mirroring the paper's plots as text.
func FormatTable(ms []Measurement, key func(Measurement) string) string {
	type cell struct{ max, ps Measurement }
	rows := map[string]*cell{}
	var order []string
	for _, m := range ms {
		k := m.Query + "\t" + key(m)
		c := rows[k]
		if c == nil {
			c = &cell{}
			rows[k] = c
			order = append(order, k)
		}
		if m.Strategy == taupsm.Max {
			c.max = m
		} else {
			c.ps = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %12s %12s %10s %10s %8s\n",
		"query", "x", "MAX(ms)", "PERST(ms)", "MAXcalls", "PScalls", "winner")
	for _, k := range order {
		c := rows[k]
		parts := strings.SplitN(k, "\t", 2)
		maxMS := float64(c.max.Elapsed.Microseconds()) / 1000
		psMS := float64(c.ps.Elapsed.Microseconds()) / 1000
		winner := "PERST"
		psStr := fmt.Sprintf("%12.2f", psMS)
		if c.ps.Err != nil {
			psStr = fmt.Sprintf("%12s", "n/a")
			winner = "MAX"
		} else if maxMS <= psMS {
			winner = "MAX"
		}
		fmt.Fprintf(&b, "%-6s %-10s %12.2f %s %10d %10d %8s\n",
			parts[0], parts[1], maxMS, psStr, c.max.Calls, c.ps.Calls, winner)
	}
	return b.String()
}
