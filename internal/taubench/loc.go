package taubench

import (
	"fmt"
	"strings"

	"taupsm"
)

// Code-expansion accounting (paper §VII-B): the sixteen nontemporal
// queries totalled ~500 lines of SQL; the maximal-slicing variants
// ~1600 lines and the per-statement variants ~2000 lines — i.e. ~30
// lines each expanding to ~100 (MAX) and ~125 (PERST), while the user
// only prepends VALIDTIME.

// Expansion reports line counts for one query.
type Expansion struct {
	Query        string
	OriginalLoC  int
	MaxLoC       int
	PerstLoC     int // 0 when PERST does not apply
	PerstApplies bool
}

// countLines counts SQL lines in a layout-independent way: whitespace
// is collapsed, then line breaks are placed before clause keywords —
// the same normalization applies to the hand-written originals and the
// printer's one-line-per-statement output, so expansion ratios compare
// code volume rather than formatting.
func countLines(s string) int {
	flat := strings.Join(strings.Fields(s), " ")
	for _, kw := range []string{
		"SELECT ", "FROM ", "WHERE ", "AND ", "OR ", "GROUP BY ", "ORDER BY ",
		"UNION ", "INSERT ", "DELETE ", "UPDATE ", "SET ", "VALUES ",
		"BEGIN ", "END", "DECLARE ", "RETURN ", "RETURNS ", "IF ", "ELSE ",
		"ELSEIF ", "WHILE ", "REPEAT ", "UNTIL ", "LOOP", "FOR ", "FETCH ",
		"OPEN ", "CLOSE ", "CASE ", "WHEN ", "CALL ", "LEAVE ", "CREATE ",
		"DROP ", "NOT EXISTS ",
	} {
		flat = strings.ReplaceAll(flat, " "+kw, "\n"+kw)
	}
	n := 0
	for _, line := range strings.Split(flat, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// CodeExpansion translates every benchmark query with both strategies
// against a loaded database and counts source lines.
func CodeExpansion(db *taupsm.DB) ([]Expansion, error) {
	var out []Expansion
	for _, q := range Queries() {
		e := Expansion{Query: q.Name, OriginalLoC: countLines(q.Routines) + countLines(q.Text)}
		seq := sequencedSQL(q, 365)
		maxSQL, err := db.Translate(seq, taupsm.Max)
		if err != nil {
			return nil, fmt.Errorf("%s MAX: %w", q.Name, err)
		}
		e.MaxLoC = countLines(maxSQL)
		psSQL, err := db.Translate(seq, taupsm.PerStatement)
		if err == nil {
			e.PerstLoC = countLines(psSQL)
			e.PerstApplies = true
		}
		out = append(out, e)
	}
	return out, nil
}

// FormatExpansion renders the §VII-B table.
func FormatExpansion(es []Expansion) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %10s %10s\n", "query", "original", "MAX", "PERST")
	var to, tm, tp int
	for _, e := range es {
		ps := fmt.Sprintf("%10d", e.PerstLoC)
		if !e.PerstApplies {
			ps = fmt.Sprintf("%10s", "n/a")
		}
		fmt.Fprintf(&b, "%-6s %10d %10d %s\n", e.Query, e.OriginalLoC, e.MaxLoC, ps)
		to += e.OriginalLoC
		tm += e.MaxLoC
		tp += e.PerstLoC
	}
	fmt.Fprintf(&b, "%-6s %10d %10d %10d\n", "total", to, tm, tp)
	fmt.Fprintf(&b, "paper: ~500 original, ~1600 MAX, ~2000 PERST (expansion ratios ~3.2x / ~4x)\n")
	return b.String()
}
