package taubench

import (
	"bytes"
	"encoding/json"
	"testing"

	"taupsm"
)

// The BT-SMALL workload must build real transaction-time history and
// every workload query must run under both strategies with rows.
func TestBitemporalWorkload(t *testing.T) {
	rep, err := MeasureBitemporal(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(BTQueries()) * 2; len(rep.Queries) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Queries), want)
	}
	for _, q := range rep.Queries {
		if q.Error != "" {
			t.Errorf("%s/%s: %s", q.Query, q.Strategy, q.Error)
			continue
		}
		if q.Rows == 0 {
			t.Errorf("%s/%s: returned no rows; the workload measured nothing", q.Query, q.Strategy)
		}
		if q.MinNS <= 0 || q.RepeatNS <= 0 {
			t.Errorf("%s/%s: missing latency (min=%d repeat=%d)", q.Query, q.Strategy, q.MinNS, q.RepeatNS)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BTReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != "BT-SMALL" || len(back.Queries) != len(rep.Queries) || back.Generated == "" {
		t.Fatalf("artifact did not round-trip: %+v", back)
	}
}

// The loader goes through the statement path, so corrections must have
// closed beliefs: the audit scan carries closed transaction-time
// versions, and the two strategies agree on the combined point audit.
func TestBitemporalLoadHistory(t *testing.T) {
	db := taupsm.Open()
	defer db.Close()
	if err := LoadBitemporal(db); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`NONSEQUENCED TRANSACTIONTIME SELECT COUNT(*) FROM bt_position WHERE tt_end_time < DATE '9999-12-31'`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].String(); n == "0" {
		t.Fatal("no closed belief versions; the corrections never versioned transaction time")
	}
}
