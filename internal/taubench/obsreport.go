package taubench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"taupsm"
)

// StageStat is the observed per-stage breakdown of one benchmark cell,
// taken from EXPLAIN ANALYZE: where the statement's wall-clock time
// went (translate, constant-period computation, execute, ...) plus the
// actual slicing counts the trace recorded.
type StageStat struct {
	Query       string `json:"query"`
	Strategy    string `json:"strategy"`
	ContextDays int    `json:"context_days"`

	TotalNS     int64 `json:"total_ns"`
	LintNS      int64 `json:"lint_ns,omitempty"`
	TranslateNS int64 `json:"translate_ns"`
	CPNS        int64 `json:"cp_ns,omitempty"`
	ExecuteNS   int64 `json:"execute_ns"`
	CommitNS    int64 `json:"commit_ns,omitempty"`
	FsyncNS     int64 `json:"fsync_ns,omitempty"`

	Rows            int    `json:"rows"`
	RoutineCalls    int64  `json:"routine_calls"`
	ConstantPeriods int64  `json:"constant_periods,omitempty"`
	Fragments       int64  `json:"fragments,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	Error           string `json:"error,omitempty"`
}

// OverheadStat quantifies the tracer's cost on one workload: the same
// statement sequence measured with trace sampling off (the st==nil
// fast path — one atomic load per statement) and with every statement
// sampled into the span ring.
//
// OffRepeatNS is a second sampling-off pass; its delta from OffNS is
// the run-to-run measurement noise, which bounds from above whatever
// the disabled instrumentation costs (an A/A comparison — the
// instrumented-but-off binary is compared against itself, since the
// uninstrumented binary no longer exists).
type OverheadStat struct {
	Workload string `json:"workload"`
	Reps     int    `json:"reps"`

	OffNS       int64 `json:"off_ns"`        // min workload total, sampling off
	OffRepeatNS int64 `json:"off_repeat_ns"` // min of the second sampling-off pass (A/A)
	SampledNS   int64 `json:"sampled_ns"`    // min workload total, sampling every statement

	// OffOverheadPct is the A/A delta (off-repeat vs. off): the
	// empirical bound on the tracer's cost when sampling is off.
	OffOverheadPct float64 `json:"off_overhead_pct"`
	// SampledOverheadPct is the cost of tracing every statement into
	// the ring relative to sampling off.
	SampledOverheadPct float64 `json:"sampled_overhead_pct"`
}

// ObsReport is the observability benchmark artifact (BENCH_3.json):
// per-query span-stage breakdowns from EXPLAIN ANALYZE plus the
// tracer-overhead comparison on the MAX one-month workload.
type ObsReport struct {
	Dataset   string         `json:"dataset"`
	Size      string         `json:"size"`
	Reps      int            `json:"reps"`
	Generated string         `json:"generated"`
	Stages    []StageStat    `json:"stages"`
	Overhead  []OverheadStat `json:"overhead"`
}

// StageBreakdown measures one cell with EXPLAIN ANALYZE and returns
// the observed stage durations. The analyzed execution is traced (the
// forced trace is what produces the breakdown), so its absolute total
// includes sampled-tracing cost; the Overhead stats quantify that cost
// separately.
func (r *Runner) StageBreakdown(q Query, strategy taupsm.Strategy, contextDays int) StageStat {
	s := StageStat{Query: q.Name, Strategy: strategy.String(), ContextDays: contextDays}
	r.DB.SetStrategy(strategy)
	defer r.DB.SetStrategy(taupsm.Auto)
	e, err := r.DB.ExplainAnalyze(sequencedSQL(q, contextDays))
	if err != nil {
		s.Error = err.Error()
		return s
	}
	a := e.Analyzed
	s.TotalNS = int64(a.Total)
	s.LintNS = int64(a.Lint)
	s.TranslateNS = int64(a.Translate)
	s.CPNS = int64(a.CP)
	s.ExecuteNS = int64(a.Execute)
	s.CommitNS = int64(a.Commit)
	s.FsyncNS = int64(a.Fsync)
	s.Rows = a.Rows
	s.RoutineCalls = a.RoutineCalls
	s.ConstantPeriods = a.ConstantPeriods
	s.Fragments = a.Fragments
	s.Workers = a.Workers
	return s
}

// runWorkload executes every benchmark query once under MAX at the
// given context length and returns each query's elapsed time, indexed
// as Queries() (zero for statements the strategy cannot run — which
// fail identically in every pass, so the passes stay comparable).
func (r *Runner) runWorkload(contextDays int) []time.Duration {
	out := make([]time.Duration, len(Queries()))
	for i, q := range Queries() {
		m := r.RunSequenced(q, taupsm.Max, contextDays)
		if m.Err == nil {
			out[i] = m.Elapsed
		}
	}
	return out
}

// MeasureOverhead compares the MAX workload at one context length
// across sampling modes: off, off again (the A/A noise bound), and
// every statement sampled. The three modes are interleaved within each
// round (so drift — GC debt, frequency scaling — hits all three alike)
// and each mode's workload total is the sum of per-query minima over
// all rounds: the standard best-case aggregation for overhead bounds,
// since every source of noise only ever adds time, and taking the
// minimum per query converges far faster than the minimum of whole-
// pass sums. A warm-up pass runs first so cache population is not
// billed to the first measured mode.
func (r *Runner) MeasureOverhead(contextDays, reps int) OverheadStat {
	if reps < 1 {
		reps = 1
	}
	o := OverheadStat{
		Workload: "MAX sweep, context " + ContextLabel(contextDays),
		Reps:     reps,
	}
	r.DB.SetTraceSampling(0)
	r.runWorkload(contextDays) // warm-up: translation/CP caches, fnmemo
	minInto := func(best, pass []time.Duration) []time.Duration {
		if best == nil {
			return pass
		}
		for i, d := range pass {
			if d < best[i] {
				best[i] = d
			}
		}
		return best
	}
	// Collect before every pass, not just every round: the pass after a
	// GC otherwise runs on a fresh heap while the next pass inherits its
	// debt, which reads as phantom overhead on whichever mode runs later.
	pass := func(sampling int) []time.Duration {
		runtime.GC()
		r.DB.SetTraceSampling(sampling)
		return r.runWorkload(contextDays)
	}
	// The two off passes alternate order across rounds so neither is
	// always the one running right after the previous round's sampled
	// pass — position in the round is itself worth a percent or two.
	var off, offRepeat, sampled []time.Duration
	for i := 0; i < reps; i++ {
		a, b := pass(0), pass(0)
		if i%2 == 1 {
			a, b = b, a
		}
		off = minInto(off, a)
		offRepeat = minInto(offRepeat, b)
		sampled = minInto(sampled, pass(1))
	}
	r.DB.SetTraceSampling(0)

	sum := func(ds []time.Duration) int64 {
		var t time.Duration
		for _, d := range ds {
			t += d
		}
		return int64(t)
	}
	o.OffNS = sum(off)
	o.OffRepeatNS = sum(offRepeat)
	o.SampledNS = sum(sampled)
	if o.OffNS > 0 {
		o.OffOverheadPct = 100 * float64(o.OffRepeatNS-o.OffNS) / float64(o.OffNS)
		o.SampledOverheadPct = 100 * float64(o.SampledNS-o.OffNS) / float64(o.OffNS)
	}
	return o
}

// BuildObsReport sweeps the stage breakdown of every query at every
// context length under both strategies, then measures tracer overhead
// on the MAX one-month workload.
func (r *Runner) BuildObsReport(contexts []int, reps int) *ObsReport {
	rep := &ObsReport{
		Dataset:   r.Stats.Spec.Name,
		Size:      r.Stats.Spec.Size.String(),
		Reps:      reps,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, q := range Queries() {
		for _, c := range contexts {
			rep.Stages = append(rep.Stages,
				r.StageBreakdown(q, taupsm.Max, c),
				r.StageBreakdown(q, taupsm.PerStatement, c))
		}
	}
	rep.Overhead = append(rep.Overhead, r.MeasureOverhead(30, reps))
	return rep
}

// WriteJSON renders the observability report as indented JSON.
func (rep *ObsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
