package taubench

import (
	"encoding/json"
	"io"
	"math"
	"runtime"
	"time"

	"taupsm"
)

// StageStat is the observed per-stage breakdown of one benchmark cell,
// taken from EXPLAIN ANALYZE: where the statement's wall-clock time
// went (translate, constant-period computation, execute, ...) plus the
// actual slicing counts the trace recorded.
type StageStat struct {
	Query       string `json:"query"`
	Strategy    string `json:"strategy"`
	ContextDays int    `json:"context_days"`

	TotalNS     int64 `json:"total_ns"`
	LintNS      int64 `json:"lint_ns,omitempty"`
	TranslateNS int64 `json:"translate_ns"`
	CPNS        int64 `json:"cp_ns,omitempty"`
	ExecuteNS   int64 `json:"execute_ns"`
	CommitNS    int64 `json:"commit_ns,omitempty"`
	FsyncNS     int64 `json:"fsync_ns,omitempty"`

	Rows            int    `json:"rows"`
	RoutineCalls    int64  `json:"routine_calls"`
	ConstantPeriods int64  `json:"constant_periods,omitempty"`
	Fragments       int64  `json:"fragments,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	Error           string `json:"error,omitempty"`
}

// OverheadStat quantifies the tracer's cost on one workload: the same
// statement sequence measured with trace sampling off (the st==nil
// fast path — one atomic load per statement) and with every statement
// sampled into the span ring.
//
// OffRepeatNS is a second sampling-off pass; its delta from OffNS is
// the run-to-run measurement noise, which bounds from above whatever
// the disabled instrumentation costs (an A/A comparison — the
// instrumented-but-off binary is compared against itself, since the
// uninstrumented binary no longer exists).
type OverheadStat struct {
	Workload string `json:"workload"`
	Reps     int    `json:"reps"`

	OffNS       int64 `json:"off_ns"`        // min workload total, sampling off
	OffRepeatNS int64 `json:"off_repeat_ns"` // min of the second sampling-off pass (A/A)
	SampledNS   int64 `json:"sampled_ns"`    // min workload total, sampling every statement

	// OffOverheadPct is the A/A delta (off-repeat vs. off): the
	// empirical bound on the tracer's cost when sampling is off.
	OffOverheadPct float64 `json:"off_overhead_pct"`
	// SampledOverheadPct is the cost of tracing every statement into
	// the ring relative to sampling off.
	SampledOverheadPct float64 `json:"sampled_overhead_pct"`
}

// BatchQueryStat is one query's cell in the batched-execution
// comparison: best-of-rounds latency under each mode, plus the warm
// EXPLAIN ANALYZE evidence for the batched path — how many relation
// loads the shared prepared plan served and how many joins took the
// sweep-line algorithm during that statement.
type BatchQueryStat struct {
	Query       string  `json:"query"`
	BatchedNS   int64   `json:"batched_ns"`
	UnbatchedNS int64   `json:"unbatched_ns"`
	Speedup     float64 `json:"speedup"` // unbatched/batched, per query

	PlanReuseHits int64 `json:"plan_reuse_hits"`
	SweepJoins    int64 `json:"sweep_joins"`
}

// BatchStat quantifies the batched-execution features on one workload:
// the MAX statement sequence measured with the shared prepared plan and
// the sweep-line interval join enabled (the default) versus both
// ablated. The methodology is MeasureOverhead's: modes interleave
// within each round, each mode's total is the sum of per-query minima,
// and a second batched pass (A/A) bounds the measurement noise so the
// reported speedup can be read against it.
type BatchStat struct {
	Workload string `json:"workload"`
	Reps     int    `json:"reps"`

	BatchedNS       int64 `json:"batched_ns"`
	BatchedRepeatNS int64 `json:"batched_repeat_ns"` // A/A noise bound
	UnbatchedNS     int64 `json:"unbatched_ns"`

	// NoiseBoundPct is the A/A delta between the two batched passes.
	NoiseBoundPct float64 `json:"noise_bound_pct"`
	// SpeedupPct is the workload-total speedup of batched over
	// unbatched, percent (positive = batched faster).
	SpeedupPct float64 `json:"speedup_pct"`
	// GeomeanSpeedup is the geometric mean of the per-query
	// unbatched/batched ratios (>1 = batched faster).
	GeomeanSpeedup float64 `json:"geomean_speedup"`

	Queries []BatchQueryStat `json:"queries"`
}

// ObsReport is the observability benchmark artifact (BENCH_3.json,
// BENCH_4.json): per-query span-stage breakdowns from EXPLAIN ANALYZE,
// the tracer-overhead comparison, and (since BENCH_4) the
// batched-execution A/B on the MAX one-month and one-year workloads.
type ObsReport struct {
	Dataset   string         `json:"dataset"`
	Size      string         `json:"size"`
	Reps      int            `json:"reps"`
	Generated string         `json:"generated"`
	Stages    []StageStat    `json:"stages"`
	Overhead  []OverheadStat `json:"overhead"`
	Batch     []BatchStat    `json:"batch,omitempty"`
}

// StageBreakdown measures one cell with EXPLAIN ANALYZE and returns
// the observed stage durations. The analyzed execution is traced (the
// forced trace is what produces the breakdown), so its absolute total
// includes sampled-tracing cost; the Overhead stats quantify that cost
// separately.
func (r *Runner) StageBreakdown(q Query, strategy taupsm.Strategy, contextDays int) StageStat {
	s := StageStat{Query: q.Name, Strategy: strategy.String(), ContextDays: contextDays}
	r.DB.SetStrategy(strategy)
	defer r.DB.SetStrategy(taupsm.Auto)
	e, err := r.DB.ExplainAnalyze(sequencedSQL(q, contextDays))
	if err != nil {
		s.Error = err.Error()
		return s
	}
	a := e.Analyzed
	s.TotalNS = int64(a.Total)
	s.LintNS = int64(a.Lint)
	s.TranslateNS = int64(a.Translate)
	s.CPNS = int64(a.CP)
	s.ExecuteNS = int64(a.Execute)
	s.CommitNS = int64(a.Commit)
	s.FsyncNS = int64(a.Fsync)
	s.Rows = a.Rows
	s.RoutineCalls = a.RoutineCalls
	s.ConstantPeriods = a.ConstantPeriods
	s.Fragments = a.Fragments
	s.Workers = a.Workers
	return s
}

// runWorkload executes every benchmark query once under MAX at the
// given context length and returns each query's elapsed time, indexed
// as Queries() (zero for statements the strategy cannot run — which
// fail identically in every pass, so the passes stay comparable).
func (r *Runner) runWorkload(contextDays int) []time.Duration {
	out := make([]time.Duration, len(Queries()))
	for i, q := range Queries() {
		m := r.RunSequenced(q, taupsm.Max, contextDays)
		if m.Err == nil {
			out[i] = m.Elapsed
		}
	}
	return out
}

// MeasureOverhead compares the MAX workload at one context length
// across sampling modes: off, off again (the A/A noise bound), and
// every statement sampled. The three modes are interleaved within each
// round (so drift — GC debt, frequency scaling — hits all three alike)
// and each mode's workload total is the sum of per-query minima over
// all rounds: the standard best-case aggregation for overhead bounds,
// since every source of noise only ever adds time, and taking the
// minimum per query converges far faster than the minimum of whole-
// pass sums. A warm-up pass runs first so cache population is not
// billed to the first measured mode.
func (r *Runner) MeasureOverhead(contextDays, reps int) OverheadStat {
	if reps < 1 {
		reps = 1
	}
	o := OverheadStat{
		Workload: "MAX sweep, context " + ContextLabel(contextDays),
		Reps:     reps,
	}
	r.DB.SetTraceSampling(0)
	r.runWorkload(contextDays) // warm-up: translation/CP caches, fnmemo
	minInto := func(best, pass []time.Duration) []time.Duration {
		if best == nil {
			return pass
		}
		for i, d := range pass {
			if d < best[i] {
				best[i] = d
			}
		}
		return best
	}
	// Collect before every pass, not just every round: the pass after a
	// GC otherwise runs on a fresh heap while the next pass inherits its
	// debt, which reads as phantom overhead on whichever mode runs later.
	pass := func(sampling int) []time.Duration {
		runtime.GC()
		r.DB.SetTraceSampling(sampling)
		return r.runWorkload(contextDays)
	}
	// The two off passes alternate order across rounds so neither is
	// always the one running right after the previous round's sampled
	// pass — position in the round is itself worth a percent or two.
	var off, offRepeat, sampled []time.Duration
	for i := 0; i < reps; i++ {
		a, b := pass(0), pass(0)
		if i%2 == 1 {
			a, b = b, a
		}
		off = minInto(off, a)
		offRepeat = minInto(offRepeat, b)
		sampled = minInto(sampled, pass(1))
	}
	r.DB.SetTraceSampling(0)

	sum := func(ds []time.Duration) int64 {
		var t time.Duration
		for _, d := range ds {
			t += d
		}
		return int64(t)
	}
	o.OffNS = sum(off)
	o.OffRepeatNS = sum(offRepeat)
	o.SampledNS = sum(sampled)
	if o.OffNS > 0 {
		o.OffOverheadPct = 100 * float64(o.OffRepeatNS-o.OffNS) / float64(o.OffNS)
		o.SampledOverheadPct = 100 * float64(o.SampledNS-o.OffNS) / float64(o.OffNS)
	}
	return o
}

// MeasureProcOverhead compares the MAX workload at one context length
// with the in-flight process registry off, off again (the A/A noise
// bound), and on, using MeasureOverhead's interleaved per-query-
// minimum methodology. Tracing stays off throughout, so the on/off
// delta isolates the registry itself: statement registration, the
// atomic progress mirrors on the scan and fragment paths, and the
// kill-flag polls. SampledNS/SampledOverheadPct carry the registry-on
// numbers.
func (r *Runner) MeasureProcOverhead(contextDays, reps int) OverheadStat {
	if reps < 1 {
		reps = 1
	}
	o := OverheadStat{
		Workload: "process registry, MAX sweep, context " + ContextLabel(contextDays),
		Reps:     reps,
	}
	r.DB.SetTraceSampling(0)
	r.DB.SetProcessRegistry(true)
	defer r.DB.SetProcessRegistry(true)
	r.runWorkload(contextDays) // warm-up: translation/CP caches, fnmemo
	minInto := func(best, pass []time.Duration) []time.Duration {
		if best == nil {
			return pass
		}
		for i, d := range pass {
			if d < best[i] {
				best[i] = d
			}
		}
		return best
	}
	pass := func(on bool) []time.Duration {
		runtime.GC()
		r.DB.SetProcessRegistry(on)
		return r.runWorkload(contextDays)
	}
	var off, offRepeat, on []time.Duration
	for i := 0; i < reps; i++ {
		a, b := pass(false), pass(false)
		if i%2 == 1 {
			a, b = b, a
		}
		off = minInto(off, a)
		offRepeat = minInto(offRepeat, b)
		on = minInto(on, pass(true))
	}

	sum := func(ds []time.Duration) int64 {
		var t time.Duration
		for _, d := range ds {
			t += d
		}
		return int64(t)
	}
	o.OffNS = sum(off)
	o.OffRepeatNS = sum(offRepeat)
	o.SampledNS = sum(on)
	if o.OffNS > 0 {
		o.OffOverheadPct = 100 * float64(o.OffRepeatNS-o.OffNS) / float64(o.OffNS)
		o.SampledOverheadPct = 100 * float64(o.SampledNS-o.OffNS) / float64(o.OffNS)
	}
	return o
}

// MeasureBatch compares the MAX workload at one context length with
// the batched-execution features (shared prepared plan + sweep-line
// join) on versus off, using MeasureOverhead's interleaved per-query-
// minimum methodology. A warm-up pass populates the translation cache
// and the prepared plans first — the plan-once/execute-many scenario
// the features target — then each round runs batched, batched again
// (the A/A noise bound) and unbatched, alternating the order of the
// two batched passes. After measurement, one EXPLAIN ANALYZE per query
// records the warm batched path's plan-reuse hits and sweep-join
// count.
func (r *Runner) MeasureBatch(contextDays, reps int) BatchStat {
	if reps < 1 {
		reps = 1
	}
	b := BatchStat{
		Workload: "MAX sweep, context " + ContextLabel(contextDays),
		Reps:     reps,
	}
	eng := r.DB.Engine()
	setBatched := func(on bool) {
		eng.DisablePlanReuse, eng.DisableSweepJoin = !on, !on
	}
	setBatched(true)
	r.runWorkload(contextDays) // warm-up: caches and prepared plans
	minInto := func(best, pass []time.Duration) []time.Duration {
		if best == nil {
			return pass
		}
		for i, d := range pass {
			if d < best[i] {
				best[i] = d
			}
		}
		return best
	}
	pass := func(on bool) []time.Duration {
		runtime.GC()
		setBatched(on)
		return r.runWorkload(contextDays)
	}
	var batched, batchedRepeat, unbatched []time.Duration
	for i := 0; i < reps; i++ {
		// Rotate the slot each mode occupies within a round: CPU
		// frequency and cache state drift over a round, so a fixed
		// order would systematically favor whichever mode runs last.
		var a, c, u []time.Duration
		switch i % 3 {
		case 0:
			a, c, u = pass(true), pass(true), pass(false)
		case 1:
			u, a, c = pass(false), pass(true), pass(true)
		case 2:
			c, u, a = pass(true), pass(false), pass(true)
		}
		if i%2 == 1 {
			a, c = c, a
		}
		batched = minInto(batched, a)
		batchedRepeat = minInto(batchedRepeat, c)
		unbatched = minInto(unbatched, u)
	}
	setBatched(true)

	var logSum float64
	ratios := 0
	for i, q := range Queries() {
		qs := BatchQueryStat{
			Query:       q.Name,
			BatchedNS:   int64(batched[i]),
			UnbatchedNS: int64(unbatched[i]),
		}
		if qs.BatchedNS > 0 && qs.UnbatchedNS > 0 {
			qs.Speedup = float64(qs.UnbatchedNS) / float64(qs.BatchedNS)
			logSum += math.Log(qs.Speedup)
			ratios++
		}
		r.DB.SetStrategy(taupsm.Max)
		if e, err := r.DB.ExplainAnalyze(sequencedSQL(q, contextDays)); err == nil {
			qs.PlanReuseHits = e.Analyzed.PlanReuseHits
			qs.SweepJoins = e.Analyzed.SweepJoins
		}
		r.DB.SetStrategy(taupsm.Auto)
		b.Queries = append(b.Queries, qs)
	}

	sum := func(ds []time.Duration) int64 {
		var t time.Duration
		for _, d := range ds {
			t += d
		}
		return int64(t)
	}
	b.BatchedNS = sum(batched)
	b.BatchedRepeatNS = sum(batchedRepeat)
	b.UnbatchedNS = sum(unbatched)
	if b.BatchedNS > 0 {
		b.NoiseBoundPct = math.Abs(100 * float64(b.BatchedRepeatNS-b.BatchedNS) / float64(b.BatchedNS))
		b.SpeedupPct = 100 * float64(b.UnbatchedNS-b.BatchedNS) / float64(b.BatchedNS)
	}
	if ratios > 0 {
		b.GeomeanSpeedup = math.Exp(logSum / float64(ratios))
	}
	return b
}

// BuildObsReport sweeps the stage breakdown of every query at every
// context length under both strategies, then measures tracer overhead
// on the MAX one-month workload.
func (r *Runner) BuildObsReport(contexts []int, reps int) *ObsReport {
	rep := &ObsReport{
		Dataset:   r.Stats.Spec.Name,
		Size:      r.Stats.Spec.Size.String(),
		Reps:      reps,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, q := range Queries() {
		for _, c := range contexts {
			for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
				if strategyEnabled(s) {
					rep.Stages = append(rep.Stages, r.StageBreakdown(q, s, c))
				}
			}
		}
	}
	rep.Overhead = append(rep.Overhead, r.MeasureOverhead(30, reps))
	// Batched-execution A/B: the one-month workload shows the prepared
	// plan's reuse wins; the one-year workload additionally gives the
	// cost model enough constant periods to choose the sweep-line join.
	rep.Batch = append(rep.Batch, r.MeasureBatch(30, reps), r.MeasureBatch(365, reps))
	return rep
}

// WriteJSON renders the observability report as indented JSON.
func (rep *ObsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
