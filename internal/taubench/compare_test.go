package taubench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareLatencyReports(t *testing.T) {
	oldJSON := []byte(`{"dataset":"DS1","size":"SMALL","queries":[
		{"query":"q2","strategy":"MAX","context_days":30,"median_ns":1000},
		{"query":"q2","strategy":"PERST","context_days":30,"median_ns":2000},
		{"query":"q7","strategy":"MAX","context_days":7,"median_ns":500},
		{"query":"gone","strategy":"MAX","context_days":1,"median_ns":10}]}`)
	newJSON := []byte(`{"dataset":"DS1","size":"SMALL","queries":[
		{"query":"q2","strategy":"MAX","context_days":30,"median_ns":1500},
		{"query":"q2","strategy":"PERST","context_days":30,"median_ns":1900},
		{"query":"q7","strategy":"MAX","context_days":7,"median_ns":510},
		{"query":"new","strategy":"MAX","context_days":1,"median_ns":10}]}`)
	cmp, err := Compare(oldJSON, newJSON, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Metric != "median_ns" {
		t.Fatalf("metric = %q, want median_ns", cmp.Metric)
	}
	if len(cmp.Cells) != 3 {
		t.Fatalf("compared %d cells, want 3", len(cmp.Cells))
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Key != "q2/MAX/30d" {
		t.Fatalf("regressions = %+v, want exactly q2/MAX/30d", regs)
	}
	if got := regs[0].DeltaPct; got != 50 {
		t.Fatalf("q2/MAX/30d delta = %v%%, want +50%%", got)
	}
	if len(cmp.OnlyOld) != 1 || cmp.OnlyOld[0] != "gone/MAX/1d" {
		t.Fatalf("OnlyOld = %v", cmp.OnlyOld)
	}
	if len(cmp.OnlyNew) != 1 || cmp.OnlyNew[0] != "new/MAX/1d" {
		t.Fatalf("OnlyNew = %v", cmp.OnlyNew)
	}
	var b strings.Builder
	cmp.Write(&b)
	out := b.String()
	if !strings.Contains(out, "REGRESSION: 1 cell(s)") || !strings.Contains(out, "<< regression") {
		t.Fatalf("report missing regression verdict:\n%s", out)
	}
}

func TestCompareObsReports(t *testing.T) {
	oldJSON := []byte(`{"dataset":"DS1","size":"SMALL","stages":[
		{"query":"q2","strategy":"MAX","context_days":30,"total_ns":4000},
		{"query":"q2","strategy":"PERST","context_days":30,"total_ns":9000}]}`)
	newJSON := []byte(`{"dataset":"DS1","size":"SMALL","stages":[
		{"query":"q2","strategy":"MAX","context_days":30,"total_ns":4100},
		{"query":"q2","strategy":"PERST","context_days":30,"total_ns":8800}]}`)
	cmp, err := Compare(oldJSON, newJSON, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Metric != "total_ns" {
		t.Fatalf("metric = %q, want total_ns", cmp.Metric)
	}
	if len(cmp.Regressions()) != 0 {
		t.Fatalf("unexpected regressions: %+v", cmp.Regressions())
	}
}

// TestCompareCommittedBaseline exercises -compare's real input: the
// committed BENCH_3.json observability artifact compared against
// itself must parse and report zero regressions.
func TestCompareCommittedBaseline(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_3.json"))
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	cmp, err := Compare(raw, raw, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Cells) == 0 {
		t.Fatal("baseline produced no comparable cells")
	}
	if len(cmp.Regressions()) != 0 {
		t.Fatalf("self-comparison regressed: %+v", cmp.Regressions())
	}
}

func TestCompareShapeMismatch(t *testing.T) {
	queries := []byte(`{"queries":[{"query":"q2","strategy":"MAX","context_days":30,"median_ns":1}]}`)
	stages := []byte(`{"stages":[{"query":"q2","strategy":"MAX","context_days":30,"total_ns":1}]}`)
	if _, err := Compare(queries, stages, 25); err == nil {
		t.Fatal("want shape-mismatch error")
	}
	if _, err := Compare([]byte(`{}`), queries, 25); err == nil {
		t.Fatal("want empty-artifact error")
	}
}
