package taubench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"taupsm"
)

// The BT-SMALL bitemporal workload (taubench -workload BT-SMALL):
// a position table carrying both valid and transaction time, populated
// by sequenced valid-time DML under an advancing clock so the
// transaction-time history is real (every correction closes beliefs
// and opens new ones), then measured with the audit-query shapes the
// bitemporal scenario unlocks. Latencies use the established
// interleaved A/A per-query-minimum methodology (see MeasureOverhead),
// so BENCH_5 carries its own noise bound.

// btEntities and btCorrections size BT-SMALL: each entity gets one
// initial insert and btCorrections sequenced corrections, each
// recorded on a later day.
const (
	btEntities    = 40
	btCorrections = 4
)

// BTQuery is one query of the bitemporal workload.
type BTQuery struct {
	Name string
	Text string
}

// BTQueries returns the audit-query shapes BT-SMALL measures: the
// current view, a valid-time slice, a transaction-time slice (belief
// evolution), the combined point audit ("what did we believe on date X
// about date Y"), and the raw nonsequenced audit scan.
func BTQueries() []BTQuery {
	return []BTQuery{
		{"bt_current", `SELECT COUNT(*) FROM bt_position`},
		{"bt_vt_slice", `VALIDTIME (DATE '2011-02-01', DATE '2011-08-01') SELECT id, title FROM bt_position`},
		{"bt_tt_slice", `TRANSACTIONTIME (DATE '2011-01-01', DATE '2011-10-01') SELECT id, title FROM bt_position`},
		{"bt_audit_point", `VALIDTIME (DATE '2011-06-15') AND TRANSACTIONTIME (DATE '2011-05-01') SELECT id, title FROM bt_position`},
		{"bt_nonseq_audit", `NONSEQUENCED TRANSACTIONTIME SELECT id, title, tt_begin_time, tt_end_time FROM bt_position`},
	}
}

// LoadBitemporal builds the BT-SMALL table in db through the statement
// path (not the bulk loader): the transaction-time periods must come
// from the versioning transform itself. Deterministic — a fixed-seed
// generator picks the valid periods and correction days.
func LoadBitemporal(db *taupsm.DB) error {
	rng := rand.New(rand.NewSource(5))
	day := func(n int) (int, int) { return 1 + (n-1)/28, 1 + (n-1)%28 }
	date := func(n int) string {
		m, d := day(n)
		return fmt.Sprintf("DATE '2011-%02d-%02d'", m, d)
	}
	db.SetNow(2011, 1, 1)
	if _, err := db.Exec(`CREATE TABLE bt_position (id CHAR(8), title CHAR(20)) AS VALIDTIME AS TRANSACTIONTIME`); err != nil {
		return err
	}
	titles := []string{"engineer", "manager", "director", "analyst", "intern"}
	for e := 0; e < btEntities; e++ {
		id := fmt.Sprintf("e%03d", e)
		// Initial assertion, recorded early in the year.
		clock := 1 + rng.Intn(20)
		m, d := day(clock)
		db.SetNow(2011, m, d)
		b := 1 + rng.Intn(60)
		ve := b + 60 + rng.Intn(200)
		if ve > 336 {
			ve = 336
		}
		if _, err := db.Exec(fmt.Sprintf(`VALIDTIME (%s, %s) INSERT INTO bt_position VALUES ('%s', '%s')`,
			date(b), date(ve), id, titles[rng.Intn(len(titles))])); err != nil {
			return err
		}
		// Corrections, each recorded on a strictly later day so every
		// one closes the previous belief.
		for c := 0; c < btCorrections; c++ {
			clock += 5 + rng.Intn(40)
			if clock > 330 {
				break
			}
			m, d := day(clock)
			db.SetNow(2011, m, d)
			cb := b + rng.Intn(ve-b)
			if _, err := db.Exec(fmt.Sprintf(`VALIDTIME (%s, %s) UPDATE bt_position SET title = '%s' WHERE id = '%s'`,
				date(cb), date(ve), titles[rng.Intn(len(titles))], id)); err != nil {
				return err
			}
		}
	}
	// Measurement clock: mid-year, when most entities' valid periods
	// are current — the TT-slice and current queries pin valid time to
	// this instant, so a late clock would see an empty present.
	db.SetNow(2011, 6, 15)
	return nil
}

// BTQueryStat is one (query, strategy) cell of the bitemporal report:
// the per-query minimum of the measured pass, the A/A repeat pass, and
// their delta as the noise bound.
type BTQueryStat struct {
	Query         string  `json:"query"`
	Strategy      string  `json:"strategy"`
	MinNS         int64   `json:"min_ns"`
	RepeatNS      int64   `json:"repeat_ns"` // A/A noise bound pass
	NoiseBoundPct float64 `json:"noise_bound_pct"`
	Rows          int     `json:"rows"`
	Error         string  `json:"error,omitempty"`
}

// BTReport is the bitemporal benchmark artifact (BENCH_5.json).
type BTReport struct {
	Workload  string        `json:"workload"`
	Reps      int           `json:"reps"`
	Generated string        `json:"generated"`
	Queries   []BTQueryStat `json:"queries"`
}

// MeasureBitemporal builds BT-SMALL and measures every workload query
// under both slicing strategies. Each round runs the full workload
// twice per strategy (A and the A/A repeat, alternating order across
// rounds), and each cell keeps its per-pass minimum over all rounds —
// MeasureOverhead's aggregation, so the same noise model applies.
func MeasureBitemporal(reps int) (*BTReport, error) {
	if reps < 1 {
		reps = 1
	}
	db := taupsm.Open()
	defer db.Close()
	if Parallelism > 0 {
		db.SetParallelism(Parallelism)
	}
	if err := LoadBitemporal(db); err != nil {
		return nil, err
	}
	db.MustExec("ANALYZE")

	queries := BTQueries()
	strategies := []taupsm.Strategy{taupsm.Max, taupsm.PerStatement}
	type cell struct {
		min, repeat time.Duration
		rows        int
		err         string
	}
	cells := make(map[string]*cell)
	key := func(q BTQuery, s taupsm.Strategy) string { return q.Name + "/" + s.String() }
	for _, q := range queries {
		for _, s := range strategies {
			cells[key(q, s)] = &cell{}
		}
	}

	pass := func(into func(*cell) *time.Duration) {
		runtime.GC()
		for _, s := range strategies {
			if !strategyEnabled(s) {
				continue
			}
			db.SetStrategy(s)
			for _, q := range queries {
				c := cells[key(q, s)]
				start := time.Now()
				res, err := db.Query(q.Text)
				elapsed := time.Since(start)
				if err != nil {
					c.err = err.Error()
					continue
				}
				c.rows = len(res.Rows)
				if d := into(c); *d == 0 || elapsed < *d {
					*d = elapsed
				}
			}
		}
	}
	minPass := func() { pass(func(c *cell) *time.Duration { return &c.min }) }
	repeatPass := func() { pass(func(c *cell) *time.Duration { return &c.repeat }) }

	minPass() // warm-up: translation and constant-period caches
	for _, c := range cells {
		c.min = 0
	}
	for i := 0; i < reps; i++ {
		if i%2 == 0 {
			minPass()
			repeatPass()
		} else {
			repeatPass()
			minPass()
		}
	}
	db.SetStrategy(taupsm.Auto)

	rep := &BTReport{
		Workload:  "BT-SMALL",
		Reps:      reps,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, q := range queries {
		for _, s := range strategies {
			if !strategyEnabled(s) {
				continue
			}
			c := cells[key(q, s)]
			st := BTQueryStat{
				Query: q.Name, Strategy: s.String(),
				MinNS: int64(c.min), RepeatNS: int64(c.repeat),
				Rows: c.rows, Error: c.err,
			}
			if c.min > 0 {
				st.NoiseBoundPct = 100 * float64(st.RepeatNS-st.MinNS) / float64(st.MinNS)
			}
			rep.Queries = append(rep.Queries, st)
		}
	}
	return rep, nil
}

// WriteJSON emits the artifact.
func (r *BTReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Write renders the report as a human-readable table.
func (r *BTReport) Write(w io.Writer) {
	fmt.Fprintf(w, "%s bitemporal workload (reps=%d)\n\n", r.Workload, r.Reps)
	fmt.Fprintf(w, "%-16s %-6s %12s %12s %8s %6s\n", "query", "strat", "min", "a/a", "noise%", "rows")
	for _, q := range r.Queries {
		if q.Error != "" {
			fmt.Fprintf(w, "%-16s %-6s ERROR %s\n", q.Query, q.Strategy, q.Error)
			continue
		}
		fmt.Fprintf(w, "%-16s %-6s %12s %12s %7.1f%% %6d\n",
			q.Query, q.Strategy, time.Duration(q.MinNS), time.Duration(q.RepeatNS), q.NoiseBoundPct, q.Rows)
	}
}
