package taubench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"taupsm"
)

// QueryStat aggregates repeated measurements of one benchmark cell
// (query, strategy, context length) into the machine-readable report.
// Fragments and ConstantPeriods come from the stratum's EXPLAIN, so
// the report carries the slicing statistics alongside the latencies.
type QueryStat struct {
	Query           string `json:"query"`
	Strategy        string `json:"strategy"`
	ContextDays     int    `json:"context_days"`
	Reps            int    `json:"reps"`
	MedianNS        int64  `json:"median_ns"`
	P95NS           int64  `json:"p95_ns"`
	Rows            int    `json:"rows"`
	RoutineCalls    int64  `json:"routine_calls"`
	Fragments       int    `json:"fragments"`
	ConstantPeriods int    `json:"constant_periods,omitempty"`
	Error           string `json:"error,omitempty"`
}

// Report is the structured benchmark artifact (BENCH_*.json): one
// dataset/size sweep with per-cell latency quantiles.
type Report struct {
	Dataset      string      `json:"dataset"`
	Size         string      `json:"size"`
	TemporalRows int         `json:"temporal_rows"`
	Reps         int         `json:"reps"`
	Generated    string      `json:"generated"`
	Queries      []QueryStat `json:"queries"`
}

// MeasureRepeated runs one benchmark cell reps times and aggregates
// median and p95 latency; slicing statistics come from EXPLAIN.
func (r *Runner) MeasureRepeated(q Query, strategy taupsm.Strategy, contextDays, reps int) QueryStat {
	if reps < 1 {
		reps = 1
	}
	stat := QueryStat{
		Query: q.Name, Strategy: strategy.String(), ContextDays: contextDays, Reps: reps,
	}
	// Collect between cells so one cell's garbage is not billed to the
	// next cell's reps — sub-millisecond cells are otherwise dominated
	// by GC debt from the large-context cells before them.
	runtime.GC()
	elapsed := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		m := r.RunSequenced(q, strategy, contextDays)
		if m.Err != nil {
			stat.Error = m.Err.Error()
			return stat
		}
		elapsed = append(elapsed, m.Elapsed)
		stat.Rows = m.Rows
		stat.RoutineCalls = m.Calls
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	stat.MedianNS = int64(elapsed[len(elapsed)/2])
	p95 := (95*len(elapsed) + 99) / 100 // ceil(0.95 n)
	stat.P95NS = int64(elapsed[p95-1])

	r.DB.SetStrategy(strategy)
	defer r.DB.SetStrategy(taupsm.Auto)
	if e, err := r.DB.Explain(sequencedSQL(q, contextDays)); err == nil {
		stat.Fragments = e.Fragments
		stat.ConstantPeriods = e.ConstantPeriods
	}
	return stat
}

// BuildReport sweeps every query at every context length under both
// strategies, reps times each, into a Report.
func (r *Runner) BuildReport(contexts []int, reps int) *Report {
	rep := &Report{
		Dataset:      r.Stats.Spec.Name,
		Size:         r.Stats.Spec.Size.String(),
		TemporalRows: r.Stats.Rows,
		Reps:         reps,
		Generated:    time.Now().UTC().Format(time.RFC3339),
	}
	for _, q := range Queries() {
		for _, c := range contexts {
			for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
				if strategyEnabled(s) {
					rep.Queries = append(rep.Queries, r.MeasureRepeated(q, s, c, reps))
				}
			}
		}
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SlowLogLine renders one slow-query log entry; Runner.RunSequenced
// emits it for measurements over the runner's SlowThreshold.
func SlowLogLine(m Measurement) string {
	status := fmt.Sprintf("rows=%d calls=%d", m.Rows, m.Calls)
	if m.Err != nil {
		status = "error=" + m.Err.Error()
	}
	return fmt.Sprintf("slow query: %s/%s %s strategy=%s context=%s elapsed=%s %s",
		m.Dataset, m.Size, m.Query, m.Strategy, ContextLabel(m.Context), m.Elapsed, status)
}
