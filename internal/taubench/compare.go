package taubench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file implements taubench -compare: a per-cell delta report
// between two benchmark artifacts, for catching performance
// regressions between runs. It understands both artifact shapes —
// latency reports (BENCH_1/2.json, "queries" keyed by median_ns) and
// observability reports (BENCH_3.json, "stages" keyed by total_ns) —
// by sniffing which array the document carries.

// CompareCell is one benchmark cell's before/after pair.
type CompareCell struct {
	Key      string // "q2/max/30d" — query, strategy, context
	OldNS    int64
	NewNS    int64
	DeltaPct float64 // (new-old)/old, percent; +Inf-free (old==0 → 0)
}

// Comparison is the diff of two benchmark artifacts.
type Comparison struct {
	Metric    string // which per-cell metric was compared
	Cells     []CompareCell
	OnlyOld   []string // cells present only in the baseline
	OnlyNew   []string // cells present only in the candidate
	Threshold float64  // regression threshold, percent
}

// benchDoc is the shape-sniffing view of a benchmark artifact: exactly
// one of Queries or Stages is populated.
type benchDoc struct {
	Dataset string      `json:"dataset"`
	Size    string      `json:"size"`
	Queries []QueryStat `json:"queries"`
	Stages  []StageStat `json:"stages"`
}

// cells flattens the artifact into key→nanoseconds, returning the
// metric name used.
func (d *benchDoc) cells() (map[string]int64, string, error) {
	out := map[string]int64{}
	switch {
	case len(d.Queries) > 0:
		for _, q := range d.Queries {
			if q.Error != "" {
				continue
			}
			out[fmt.Sprintf("%s/%s/%dd", q.Query, q.Strategy, q.ContextDays)] = q.MedianNS
		}
		return out, "median_ns", nil
	case len(d.Stages) > 0:
		for _, s := range d.Stages {
			if s.Error != "" {
				continue
			}
			out[fmt.Sprintf("%s/%s/%dd", s.Query, s.Strategy, s.ContextDays)] = s.TotalNS
		}
		return out, "total_ns", nil
	}
	return nil, "", fmt.Errorf("artifact has neither queries nor stages")
}

// Compare diffs two benchmark artifacts (raw JSON). Both must be the
// same shape (two latency reports or two observability reports).
// threshold is the regression limit in percent for Regressions.
func Compare(oldJSON, newJSON []byte, threshold float64) (*Comparison, error) {
	var oldDoc, newDoc benchDoc
	if err := json.Unmarshal(oldJSON, &oldDoc); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(newJSON, &newDoc); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	oldCells, oldMetric, err := oldDoc.cells()
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	newCells, newMetric, err := newDoc.cells()
	if err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	if oldMetric != newMetric {
		return nil, fmt.Errorf("artifacts disagree on shape: baseline carries %s, candidate %s", oldMetric, newMetric)
	}
	cmp := &Comparison{Metric: oldMetric, Threshold: threshold}
	for k, oldNS := range oldCells {
		newNS, ok := newCells[k]
		if !ok {
			cmp.OnlyOld = append(cmp.OnlyOld, k)
			continue
		}
		c := CompareCell{Key: k, OldNS: oldNS, NewNS: newNS}
		if oldNS > 0 {
			c.DeltaPct = 100 * float64(newNS-oldNS) / float64(oldNS)
		}
		cmp.Cells = append(cmp.Cells, c)
	}
	for k := range newCells {
		if _, ok := oldCells[k]; !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, k)
		}
	}
	sort.Slice(cmp.Cells, func(i, j int) bool { return cmp.Cells[i].Key < cmp.Cells[j].Key })
	sort.Strings(cmp.OnlyOld)
	sort.Strings(cmp.OnlyNew)
	return cmp, nil
}

// cellStrategy extracts the strategy component of a cell key
// ("q2/MAX/30d" → "MAX"); empty when the key has a different shape.
func cellStrategy(key string) string {
	parts := strings.Split(key, "/")
	if len(parts) != 3 {
		return ""
	}
	return parts[1]
}

// GeomeanSpeedup aggregates one strategy's per-cell old/new ratios
// into a geometric-mean speedup factor (>1 = candidate faster, <1 =
// slower) and the number of cells aggregated. The geometric mean is
// the right aggregate for ratios: a 2x win and a 2x loss cancel to
// 1.0 instead of averaging to a spurious 1.25. strategy is matched
// case-insensitively; "" aggregates every comparable cell.
func (c *Comparison) GeomeanSpeedup(strategy string) (float64, int) {
	var logSum float64
	n := 0
	for _, cell := range c.Cells {
		if cell.OldNS <= 0 || cell.NewNS <= 0 {
			continue
		}
		if strategy != "" && !strings.EqualFold(cellStrategy(cell.Key), strategy) {
			continue
		}
		logSum += math.Log(float64(cell.OldNS) / float64(cell.NewNS))
		n++
	}
	if n == 0 {
		return 1, 0
	}
	return math.Exp(logSum / float64(n)), n
}

// strategies returns the distinct strategy components across the
// comparable cells, sorted.
func (c *Comparison) strategies() []string {
	seen := map[string]bool{}
	var out []string
	for _, cell := range c.Cells {
		if s := cellStrategy(cell.Key); s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Regressions returns the cells slower than the threshold, worst
// first.
func (c *Comparison) Regressions() []CompareCell {
	var out []CompareCell
	for _, cell := range c.Cells {
		if cell.DeltaPct > c.Threshold {
			out = append(out, cell)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeltaPct > out[j].DeltaPct })
	return out
}

// Write renders the per-cell delta table and the regression verdict.
func (c *Comparison) Write(w io.Writer) {
	fmt.Fprintf(w, "%-24s %12s %12s %9s\n", "cell", "old "+c.Metric, "new "+c.Metric, "delta")
	for _, cell := range c.Cells {
		marker := ""
		if cell.DeltaPct > c.Threshold {
			marker = "  << regression"
		}
		fmt.Fprintf(w, "%-24s %12d %12d %+8.1f%%%s\n",
			cell.Key, cell.OldNS, cell.NewNS, cell.DeltaPct, marker)
	}
	for _, k := range c.OnlyOld {
		fmt.Fprintf(w, "%-24s only in baseline\n", k)
	}
	for _, k := range c.OnlyNew {
		fmt.Fprintf(w, "%-24s only in candidate\n", k)
	}
	for _, s := range c.strategies() {
		factor, n := c.GeomeanSpeedup(s)
		fmt.Fprintf(w, "geomean %s: %.2fx speedup vs baseline (%d cells)\n", s, factor, n)
	}
	if regs := c.Regressions(); len(regs) > 0 {
		keys := make([]string, len(regs))
		for i, r := range regs {
			keys[i] = fmt.Sprintf("%s (%+.1f%%)", r.Key, r.DeltaPct)
		}
		fmt.Fprintf(w, "REGRESSION: %d cell(s) over the %.0f%% threshold: %s\n",
			len(regs), c.Threshold, strings.Join(keys, ", "))
	} else {
		fmt.Fprintf(w, "ok: no cell regressed more than %.0f%% (%d compared)\n",
			c.Threshold, len(c.Cells))
	}
}
