// Package taubench reproduces the τPSM benchmark of the paper's §VII:
// the shredded DC/SD bookstore schema rendered temporal by a change
// simulation (datasets DS1/DS2/DS3 in three sizes), the sixteen PSM
// benchmark queries q2..q20 (each highlighting one SQL/PSM construct),
// and the experiment harness regenerating Figures 12-15 and the §VII-B
// and §VII-F in-text tables.
package taubench

import (
	"fmt"
	"math"
	"math/rand"

	"taupsm"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Size scales a dataset. The paper's SMALL/MEDIUM/LARGE are 12MB, 34MB
// and 260MB on DB2; here they are scaled to in-memory row counts with
// the same ratios (LARGE ≈ 20x SMALL in changed rows).
type Size int

// Dataset sizes.
const (
	Small Size = iota
	Medium
	Large
)

// String names the size as in the paper's plots.
func (s Size) String() string {
	switch s {
	case Medium:
		return "MEDIUM"
	case Large:
		return "LARGE"
	}
	return "SMALL"
}

// factor scales entity and change counts.
func (s Size) factor() int {
	switch s {
	case Medium:
		return 3
	case Large:
		return 10
	}
	return 1
}

// Spec describes one τPSM dataset: DS1 (weekly changes, uniform item
// selection), DS2 (weekly, Gaussian hot spots), DS3 (daily changes,
// uniform; ~6.7x the slices with the same total change count).
type Spec struct {
	Name string
	Size Size

	Items      int
	Authors    int
	Publishers int

	Slices         int  // number of change steps over the 2-year line
	StepDays       int  // days between steps (7 weekly, 1 daily)
	ChangesPerStep int  // changes applied at each step
	HotSpot        bool // Gaussian item selection (DS2)

	Seed int64
}

// timeline start: two years of valid time, as in τBench.
var (
	timelineStart = types.MustDate(2010, 1, 1)
	timelineEnd   = types.MustDate(2012, 1, 1)
)

// TimelineStart returns the first instant of the generated history.
func TimelineStart() int64 { return timelineStart }

// TimelineEnd returns the instant just past the generated history.
func TimelineEnd() int64 { return timelineEnd }

// DS1 is the weekly/uniform dataset: 104 slices over two years.
func DS1(size Size) Spec {
	f := size.factor()
	return Spec{Name: "DS1", Size: size,
		Items: 200 * f, Authors: 125 * f, Publishers: 40,
		Slices: 104, StepDays: 7, ChangesPerStep: 24 * f, Seed: 1}
}

// DS2 is DS1 with Gaussian hot-spot item selection.
func DS2(size Size) Spec {
	s := DS1(size)
	s.Name = "DS2"
	s.HotSpot = true
	s.Seed = 2
	return s
}

// DS3 changes daily: 693 slices with (approximately) the same total
// change count as DS1, making the number of slices the varying factor.
func DS3(size Size) Spec {
	f := size.factor()
	return Spec{Name: "DS3", Size: size,
		Items: 200 * f, Authors: 125 * f, Publishers: 40,
		Slices: 693, StepDays: 1, ChangesPerStep: (24*f*104 + 692) / 693, Seed: 3}
}

// SpecByName resolves "DS1".."DS3".
func SpecByName(name string, size Size) (Spec, error) {
	switch name {
	case "DS1":
		return DS1(size), nil
	case "DS2":
		return DS2(size), nil
	case "DS3":
		return DS3(size), nil
	}
	return Spec{}, fmt.Errorf("unknown dataset %q (want DS1, DS2 or DS3)", name)
}

// Schema is the shredded DC/SD bookstore schema with valid-time
// support on all six tables.
const Schema = `
CREATE TABLE item (
  item_id CHAR(10), title VARCHAR(100), isbn CHAR(13),
  number_of_pages INTEGER, price FLOAT, pub_date DATE, subject VARCHAR(30)
) AS VALIDTIME;
CREATE TABLE author (
  author_id CHAR(10), first_name VARCHAR(30), last_name VARCHAR(30),
  country VARCHAR(20), date_of_birth DATE
) AS VALIDTIME;
CREATE TABLE publisher (
  publisher_id CHAR(10), name VARCHAR(50), city VARCHAR(30), country VARCHAR(20)
) AS VALIDTIME;
CREATE TABLE related_items (item_id CHAR(10), related_id CHAR(10)) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10)) AS VALIDTIME;
CREATE TABLE item_publisher (item_id CHAR(10), publisher_id CHAR(10)) AS VALIDTIME;
`

var subjects = []string{"Databases", "Systems", "Networks", "Theory", "Graphics", "Security", "Languages", "History"}
var countries = []string{"USA", "Canada", "UK", "Germany", "France", "Japan", "Brazil", "India"}
var firstNames = []string{"Ben", "Amy", "Carl", "Dana", "Eli", "Fay", "Gus", "Hana", "Ivan", "June",
	"Kai", "Lena", "Milo", "Nora", "Otis", "Pia", "Quin", "Rosa", "Seth", "Tess"}
var lastNames = []string{"Stone", "Reed", "Tan", "Urbina", "Voss", "Wolfe", "Xu", "Young", "Zorn", "Abel"}
var cities = []string{"Tucson", "Kingston", "San Jose", "Berlin", "Tokyo", "Lyon", "Porto", "Pune"}

// version is one open row of a temporal table during simulation.
type version struct {
	row   []types.Value
	begin int64
}

// genTable accumulates versions for one table during the simulation,
// indexed by the first column for O(1) change targeting.
type genTable struct {
	closed  [][]types.Value // fully timestamped rows
	current []*version      // open rows (end with end_time = forever)
	index   map[string][]*version
	ncols   int // data columns (excluding timestamps)
}

func newGenTable(ncols int) *genTable {
	return &genTable{ncols: ncols, index: make(map[string][]*version)}
}

func (g *genTable) add(begin int64, vals ...types.Value) *version {
	v := &version{row: vals, begin: begin}
	g.current = append(g.current, v)
	g.index[vals[0].S] = append(g.index[vals[0].S], v)
	return v
}

// first returns an open version keyed by the first column, or nil.
func (g *genTable) first(key types.Value) *version {
	vs := g.index[key.S]
	if len(vs) == 0 {
		return nil
	}
	return vs[0]
}

// change closes the version at time t and opens a new one with the
// mutated row. If the version already begins at t it is mutated in
// place (two changes in the same granule collapse).
func (g *genTable) change(v *version, t int64, mutate func(row []types.Value)) {
	if v.begin == t {
		mutate(v.row)
		return
	}
	closedRow := append(append([]types.Value{}, v.row...), types.NewDate(v.begin), types.NewDate(t))
	g.closed = append(g.closed, closedRow)
	newRow := append([]types.Value{}, v.row...)
	mutate(newRow)
	v.row = newRow
	v.begin = t
}

// flush writes all rows into a storage table.
func (g *genTable) flush(t *storage.Table) {
	for _, r := range g.closed {
		t.Rows = append(t.Rows, r)
	}
	for _, v := range g.current {
		row := append(append([]types.Value{}, v.row...), types.NewDate(v.begin), types.NewDate(types.Forever))
		t.Rows = append(t.Rows, row)
	}
	t.Bump()
}

// Load creates the τPSM schema in db and populates it with the
// simulated history described by spec. It returns generation
// statistics used by the harness.
func Load(db *taupsm.DB, spec Spec) (*LoadStats, error) {
	if _, err := db.Exec(Schema); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	items := newGenTable(7)
	authors := newGenTable(5)
	publishers := newGenTable(4)
	related := newGenTable(2)
	itemAuthor := newGenTable(2)
	itemPublisher := newGenTable(2)

	id := func(prefix string, i int) types.Value {
		return types.NewString(fmt.Sprintf("%s%d", prefix, i))
	}

	// Initial state, valid from the timeline start.
	start := timelineStart
	for i := 0; i < spec.Authors; i++ {
		authors.add(start,
			id("a", i),
			types.NewString(firstNames[i%len(firstNames)]),
			types.NewString(lastNames[(i/len(firstNames))%len(lastNames)]),
			types.NewString(countries[i%len(countries)]),
			types.NewDate(types.MustDate(1940+i%60, 1+i%12, 1+i%28)))
	}
	for i := 0; i < spec.Publishers; i++ {
		publishers.add(start,
			id("p", i),
			types.NewString(fmt.Sprintf("Publisher House %d", i)),
			types.NewString(cities[i%len(cities)]),
			types.NewString(countries[i%len(countries)]))
	}
	for i := 0; i < spec.Items; i++ {
		items.add(start,
			id("i", i),
			types.NewString(fmt.Sprintf("Book Title %d", i)),
			types.NewString(fmt.Sprintf("978%010d", i)),
			types.NewInt(int64(80+rng.Intn(900))),
			types.NewFloat(5+float64(rng.Intn(9000))/100),
			types.NewDate(start-int64(rng.Intn(3650))),
			types.NewString(subjects[i%len(subjects)]))
		// 1-3 authors per item
		na := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for a := 0; a < na; a++ {
			aid := rng.Intn(spec.Authors)
			if seen[aid] {
				continue
			}
			seen[aid] = true
			itemAuthor.add(start, id("i", i), id("a", aid))
		}
		itemPublisher.add(start, id("i", i), id("p", rng.Intn(spec.Publishers)))
		// ~1.5 related items per item
		for r := 0; r < 1+rng.Intn(2); r++ {
			related.add(start, id("i", i), id("i", rng.Intn(spec.Items)))
		}
	}

	// pickItem selects an item index uniformly or from a Gaussian
	// centered on the hot spot (DS2).
	pickItem := func() int {
		if !spec.HotSpot {
			return rng.Intn(spec.Items)
		}
		for {
			g := rng.NormFloat64()*float64(spec.Items)/10 + float64(spec.Items)/2
			i := int(math.Round(g))
			if i >= 0 && i < spec.Items {
				return i
			}
		}
	}

	stats := &LoadStats{Spec: spec}
	// Change simulation: at each step time, apply ChangesPerStep
	// random changes.
	for s := 1; s <= spec.Slices; s++ {
		t := start + int64(s*spec.StepDays)
		if t >= timelineEnd {
			break
		}
		for c := 0; c < spec.ChangesPerStep; c++ {
			stats.Changes++
			switch k := rng.Intn(10); {
			case k < 4: // item attribute change
				it := pickItem()
				v := items.first(id("i", it))
				delta := 1 + float64(rng.Intn(200))/100
				items.change(v, t, func(row []types.Value) {
					switch rng.Intn(3) {
					case 0:
						row[4] = types.NewFloat(math.Round((row[4].Float()+delta)*100) / 100)
					case 1:
						row[3] = types.NewInt(row[3].Int() + 8)
					default:
						row[6] = types.NewString(subjects[rng.Intn(len(subjects))])
					}
				})
			case k < 6: // author attribute change
				a := rng.Intn(spec.Authors)
				v := authors.first(id("a", a))
				authors.change(v, t, func(row []types.Value) {
					switch rng.Intn(3) {
					case 0:
						row[1] = types.NewString(firstNames[rng.Intn(len(firstNames))])
					case 1:
						row[2] = types.NewString(lastNames[rng.Intn(len(lastNames))])
					default:
						row[3] = types.NewString(countries[rng.Intn(len(countries))])
					}
				})
			case k < 7: // publisher attribute change
				p := rng.Intn(spec.Publishers)
				v := publishers.first(id("p", p))
				publishers.change(v, t, func(row []types.Value) {
					if rng.Intn(2) == 0 {
						row[2] = types.NewString(cities[rng.Intn(len(cities))])
					} else {
						row[3] = types.NewString(countries[rng.Intn(len(countries))])
					}
				})
			case k < 9: // item_author rewire: item changes one author
				it := pickItem()
				v := itemAuthor.first(id("i", it))
				if v == nil {
					continue
				}
				na := rng.Intn(spec.Authors)
				itemAuthor.change(v, t, func(row []types.Value) {
					row[1] = id("a", na)
				})
			default: // related_items rewire
				it := pickItem()
				v := related.first(id("i", it))
				if v == nil {
					continue
				}
				nr := rng.Intn(spec.Items)
				related.change(v, t, func(row []types.Value) {
					row[1] = id("i", nr)
				})
			}
		}
	}

	// Flush into storage.
	cat := db.Engine().Cat
	for _, pair := range []struct {
		name string
		gen  *genTable
	}{
		{"item", items}, {"author", authors}, {"publisher", publishers},
		{"related_items", related}, {"item_author", itemAuthor}, {"item_publisher", itemPublisher},
	} {
		tab := cat.Table(pair.name)
		pair.gen.flush(tab)
		stats.Rows += len(tab.Rows)
	}
	return stats, nil
}

// LoadStats summarizes a generated dataset.
type LoadStats struct {
	Spec    Spec
	Rows    int // total rows across the six temporal tables
	Changes int // change events applied
}
