package taubench

// The sixteen τPSM benchmark queries (paper §VII-A2), each highlighting
// one SQL/PSM construct. Every query consists of routine definitions
// (conventional SQL/PSM, stored as written) and a query invoking them;
// the sequenced variant is obtained by prepending VALIDTIME, exactly as
// in the paper ("all the user had to do was to prepend VALIDTIME").

// Query is one benchmark query.
type Query struct {
	// Name is the paper's identifier (q2 ... q20).
	Name string
	// Feature is the highlighted construct.
	Feature string
	// ClassSmall is the paper's Figure-12 class on DS1-SMALL:
	// A = PERST always faster, B = crossover between 1w and 1m,
	// C = MAX always faster, D = MAX first then converging.
	ClassSmall string
	// ClassLarge is the class on DS1-LARGE (Figure 13); SVII-C notes
	// q3, q6 move B->A; q9, q10 move D->B; q7, q7b move A->C.
	ClassLarge string
	// Routines is the routine-definition script.
	Routines string
	// Text is the query body (no temporal modifier).
	Text string
	// PerstOK reports whether per-statement slicing applies (false
	// only for q17b's non-nested FETCH).
	PerstOK bool
}

// Queries returns the τPSM query suite in the paper's order.
func Queries() []Query {
	return []Query{
		{
			Name: "q2", ClassLarge: "B", Feature: "SET with a SELECT row", ClassSmall: "B", PerstOK: true,
			Routines: `
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS VARCHAR(30)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname VARCHAR(30);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END`,
			Text: `SELECT i.title FROM item i, item_author ia
WHERE i.item_id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`,
		},
		{
			Name: "q2b", ClassLarge: "B", Feature: "multiple SET statements", ClassSmall: "B", PerstOK: true,
			Routines: `
CREATE FUNCTION get_author_full_name (aid CHAR(10))
RETURNS VARCHAR(61)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fn VARCHAR(30);
  DECLARE ln VARCHAR(30);
  DECLARE fullname VARCHAR(61);
  SET fn = (SELECT first_name FROM author WHERE author_id = aid);
  SET ln = (SELECT last_name FROM author WHERE author_id = aid);
  SET fullname = fn || ' ' || ln;
  RETURN fullname;
END`,
			Text: `SELECT i.title FROM item i, item_author ia
WHERE i.item_id = ia.item_id AND get_author_full_name(ia.author_id) = 'Ben Stone'`,
		},
		{
			Name: "q3", ClassLarge: "A", Feature: "RETURN with a SELECT row", ClassSmall: "B", PerstOK: true,
			Routines: `
CREATE FUNCTION get_item_price (iid CHAR(10))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  RETURN (SELECT price FROM item WHERE item_id = iid);
END`,
			Text: `SELECT ia.item_id, ia.author_id FROM item_author ia
WHERE get_item_price(ia.item_id) < 20`,
		},
		{
			Name: "q5", ClassLarge: "D", Feature: "a function in the SELECT list", ClassSmall: "D", PerstOK: true,
			Routines: `
CREATE FUNCTION get_publisher_name (pid CHAR(10))
RETURNS VARCHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE nm VARCHAR(50);
  SET nm = (SELECT name FROM publisher WHERE publisher_id = pid);
  RETURN nm;
END`,
			Text: `SELECT ip.item_id, get_publisher_name(ip.publisher_id)
FROM item_publisher ip, item i
WHERE i.item_id = ip.item_id AND i.subject = 'Systems'`,
		},
		{
			Name: "q6", ClassLarge: "A", Feature: "the CASE statement", ClassSmall: "B", PerstOK: true,
			Routines: `
CREATE FUNCTION describe_book (iid CHAR(10), kind INTEGER)
RETURNS VARCHAR(100)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE r VARCHAR(100);
  CASE kind
    WHEN 1 THEN SET r = (SELECT title FROM item WHERE item_id = iid);
    WHEN 2 THEN SET r = (SELECT subject FROM item WHERE item_id = iid);
    ELSE SET r = 'unknown';
  END CASE;
  RETURN r;
END`,
			Text: `SELECT ia.item_id FROM item_author ia
WHERE describe_book(ia.item_id, 2) = 'Databases'`,
		},
		{
			Name: "q7", ClassLarge: "C", Feature: "the WHILE statement", ClassSmall: "A", PerstOK: true,
			Routines: `
CREATE FUNCTION count_related (iid CHAR(10))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE rid CHAR(10) DEFAULT '';
  DECLARE cur CURSOR FOR SELECT related_id FROM related_items WHERE item_id = iid;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  wl: WHILE done = 0 DO
    FETCH cur INTO rid;
    IF done = 0 THEN
      SET n = n + 1;
    END IF;
  END WHILE wl;
  CLOSE cur;
  RETURN n;
END`,
			Text: `SELECT i.item_id FROM item i
WHERE i.subject = 'Theory' AND count_related(i.item_id) >= 2`,
		},
		{
			Name: "q7b", ClassLarge: "C", Feature: "the REPEAT statement", ClassSmall: "A", PerstOK: true,
			Routines: `
CREATE FUNCTION count_related_r (iid CHAR(10))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE rid CHAR(10) DEFAULT '';
  DECLARE cur CURSOR FOR SELECT related_id FROM related_items WHERE item_id = iid;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  rl: REPEAT
    FETCH cur INTO rid;
    IF done = 0 THEN
      SET n = n + 1;
    END IF;
  UNTIL done = 1 END REPEAT rl;
  CLOSE cur;
  RETURN n;
END`,
			Text: `SELECT i.item_id FROM item i
WHERE i.subject = 'Graphics' AND count_related_r(i.item_id) >= 2`,
		},
		{
			Name: "q8", ClassLarge: "B", Feature: "a loop name with the FOR statement", ClassSmall: "B", PerstOK: true,
			Routines: `
CREATE FUNCTION sum_subject_prices (sub VARCHAR(30))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE total FLOAT DEFAULT 0.0;
  floop: FOR r AS SELECT price FROM item WHERE subject = sub DO
    SET total = total + r.price;
  END FOR floop;
  RETURN total;
END`,
			Text: `SELECT p.publisher_id FROM publisher p
WHERE p.country = 'Canada' AND sum_subject_prices('Security') > 100`,
		},
		{
			Name: "q9", ClassLarge: "B", Feature: "a CALL within a procedure", ClassSmall: "D", PerstOK: true,
			Routines: `
CREATE PROCEDURE fetch_price (IN iid CHAR(10), OUT p FLOAT)
READS SQL DATA
LANGUAGE SQL
BEGIN
  SET p = (SELECT price FROM item WHERE item_id = iid);
END;
CREATE PROCEDURE price_with_tax (IN iid CHAR(10), OUT t FLOAT)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE base FLOAT DEFAULT 0.0;
  CALL fetch_price(iid, base);
  SET t = base * 1.1;
END;
CREATE FUNCTION taxed_price (iid CHAR(10))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE t FLOAT DEFAULT 0.0;
  CALL price_with_tax(iid, t);
  RETURN t;
END`,
			Text: `SELECT i.item_id FROM item i
WHERE i.subject = 'Networks' AND taxed_price(i.item_id) > 55`,
		},
		{
			Name: "q10", ClassLarge: "B", Feature: "an IF without a CURSOR", ClassSmall: "D", PerstOK: true,
			Routines: `
CREATE FUNCTION name_or_country (aid CHAR(10), which INTEGER)
RETURNS VARCHAR(30)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE r VARCHAR(30);
  IF which = 1 THEN
    SET r = (SELECT first_name FROM author WHERE author_id = aid);
  ELSE
    SET r = (SELECT country FROM author WHERE author_id = aid);
  END IF;
  RETURN r;
END`,
			Text: `SELECT ia.item_id FROM item_author ia
WHERE name_or_country(ia.author_id, 2) = 'Canada'`,
		},
		{
			Name: "q11", ClassLarge: "A", Feature: "creation of a temporary table", ClassSmall: "A", PerstOK: true,
			Routines: `
CREATE FUNCTION count_subject_books (sub VARCHAR(30))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE tid CHAR(10) DEFAULT '';
  DECLARE cur CURSOR FOR SELECT tid_col FROM tmp_subject_items;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  CREATE TEMPORARY TABLE tmp_subject_items (tid_col CHAR(10));
  INSERT INTO tmp_subject_items SELECT item_id FROM item WHERE subject = sub;
  OPEN cur;
  wl: WHILE done = 0 DO
    FETCH cur INTO tid;
    IF done = 0 THEN
      SET n = n + 1;
    END IF;
  END WHILE wl;
  CLOSE cur;
  DROP TABLE tmp_subject_items;
  RETURN n;
END`,
			Text: `SELECT p.publisher_id FROM publisher p
WHERE p.country = 'UK' AND count_subject_books('History') > 10`,
		},
		{
			Name: "q14", ClassLarge: "A", Feature: "a local cursor with FETCH, OPEN and CLOSE", ClassSmall: "A", PerstOK: true,
			Routines: `
CREATE FUNCTION publisher_of (iid CHAR(10))
RETURNS VARCHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE nm VARCHAR(50) DEFAULT 'none';
  DECLARE cur CURSOR FOR
    SELECT p.name FROM publisher p, item_publisher ip
    WHERE ip.item_id = iid AND p.publisher_id = ip.publisher_id;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  wl: WHILE done = 0 DO
    FETCH cur INTO nm;
  END WHILE wl;
  CLOSE cur;
  RETURN nm;
END`,
			Text: `SELECT i.item_id FROM item i
WHERE i.subject = 'Systems' AND publisher_of(i.item_id) = 'Publisher House 7'`,
		},
		{
			Name: "q17", ClassLarge: "C", Feature: "the LEAVE statement", ClassSmall: "C", PerstOK: true,
			Routines: `
CREATE FUNCTION count_by_country (cty VARCHAR(20))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE nm VARCHAR(30) DEFAULT '';
  DECLARE cur CURSOR FOR SELECT first_name FROM author WHERE country = cty;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  lp: LOOP
    FETCH cur INTO nm;
    IF done = 1 THEN
      LEAVE lp;
    END IF;
    SET n = n + 1;
  END LOOP lp;
  CLOSE cur;
  RETURN n;
END`,
			Text: `SELECT p.publisher_id FROM publisher p
WHERE p.country = 'Japan' AND count_by_country('Japan') > 5`,
		},
		{
			Name: "q17b", ClassLarge: "-", Feature: "a non-nested FETCH statement", ClassSmall: "-", PerstOK: false,
			Routines: `
CREATE FUNCTION mixed_scan (sub VARCHAR(30))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE iid CHAR(10) DEFAULT '';
  DECLARE n INTEGER DEFAULT 0;
  DECLARE all_items CURSOR FOR SELECT item_id FROM item WHERE subject = sub;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN all_items;
  FETCH all_items INTO iid;
  wl: WHILE done = 0 DO
    FOR r AS SELECT a.first_name AS fn FROM author a, item_author ia
        WHERE ia.item_id = iid AND a.author_id = ia.author_id DO
      SET n = n + 1;
      FETCH all_items INTO iid;
      IF done = 1 THEN
        LEAVE wl;
      END IF;
    END FOR;
    FETCH all_items INTO iid;
  END WHILE wl;
  CLOSE all_items;
  RETURN n;
END`,
			Text: `SELECT p.publisher_id FROM publisher p
WHERE p.country = 'France' AND mixed_scan('Languages') > 0`,
		},
		{
			Name: "q19", ClassLarge: "A", Feature: "a function called in the FROM clause", ClassSmall: "A", PerstOK: true,
			Routines: `
CREATE FUNCTION authors_of (iid CHAR(10))
RETURNS ROW(aid CHAR(10)) ARRAY
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE acc ROW(aid CHAR(10)) ARRAY;
  INSERT INTO TABLE acc SELECT author_id FROM item_author WHERE item_id = iid;
  RETURN acc;
END`,
			Text: `SELECT i.title, f.aid FROM item i, TABLE(authors_of(i.item_id)) AS f
WHERE i.subject = 'Databases'`,
		},
		{
			Name: "q20", ClassLarge: "D", Feature: "a SET statement", ClassSmall: "D", PerstOK: true,
			Routines: `
CREATE FUNCTION discounted_price (iid CHAR(10))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE p FLOAT;
  DECLARE d FLOAT;
  SET p = (SELECT price FROM item WHERE item_id = iid);
  SET d = p * 0.9;
  RETURN d;
END`,
			Text: `SELECT i.item_id FROM item i
WHERE i.subject = 'Databases' AND discounted_price(i.item_id) > 45`,
		},
	}
}

// QueryByName finds a benchmark query by its paper identifier.
func QueryByName(name string) (Query, bool) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}
