package taubench

import (
	"fmt"
	"sort"
	"strings"

	"taupsm"
	"taupsm/internal/types"
)

// Correctness checking (paper §VII-B): "we compared the result of
// evaluating each nontemporal query on a timeslice of the temporal
// database on each day with the result of a timeslice on that day of
// the result of both transformations of the temporal version of the
// query" — commutativity — "and ensured that the results of maximal
// slicing and per-statement slicing were equivalent".

// SampleDays returns representative instants across the two-year
// timeline: the start, every stride-th day, and the day before the end.
func SampleDays(stride int) []int64 {
	var out []int64
	for d := timelineStart; d < timelineEnd; d += int64(stride) {
		out = append(out, d)
	}
	out = append(out, timelineEnd-1)
	return out
}

// timeslice projects the rows of a sequenced result (begin_time,
// end_time, data...) valid at instant d, as a sorted multiset.
func timeslice(res *taupsm.Result, d int64) []string {
	day := types.FormatDate(d)
	var out []string
	for _, row := range res.Rows {
		if row[0].String() <= day && day < row[1].String() {
			var vals []string
			for _, v := range row[2:] {
				vals = append(vals, v.String())
			}
			out = append(out, strings.Join(vals, "|"))
		}
	}
	sort.Strings(out)
	return out
}

// rowsOf renders a current result as a sorted multiset.
func rowsOf(res *taupsm.Result) []string {
	var out []string
	for _, row := range res.Rows {
		var vals []string
		for _, v := range row {
			vals = append(vals, v.String())
		}
		out = append(out, strings.Join(vals, "|"))
	}
	sort.Strings(out)
	return out
}

// CheckCommutativity verifies, for each sampled day d, that the
// timeslice at d of the sequenced result equals the nontemporal query
// evaluated on the timeslice at d (i.e. the current query with
// CURRENT_DATE = d).
func (r *Runner) CheckCommutativity(q Query, strategy taupsm.Strategy, days []int64) error {
	r.DB.SetStrategy(strategy)
	defer r.DB.SetStrategy(taupsm.Auto)
	seq, err := r.DB.Query(sequencedSQL(q, int(timelineEnd-timelineStart)))
	if err != nil {
		return fmt.Errorf("%s/%v sequenced: %w", q.Name, strategy, err)
	}
	savedNow := r.DB.Engine().Now
	defer func() { r.DB.Engine().Now = savedNow }()
	for _, d := range days {
		slice := timeslice(seq, d)
		r.DB.Engine().Now = d
		cur, err := r.DB.Query(q.Text)
		if err != nil {
			return fmt.Errorf("%s current at %s: %w", q.Name, types.FormatDate(d), err)
		}
		curRows := rowsOf(cur)
		if strings.Join(slice, ";") != strings.Join(curRows, ";") {
			return fmt.Errorf("%s/%v: timeslice at %s has %d rows, current query has %d rows\nslice:   %v\ncurrent: %v",
				q.Name, strategy, types.FormatDate(d), len(slice), len(curRows),
				head(slice, 6), head(curRows, 6))
		}
	}
	return nil
}

// CheckStrategiesAgree verifies that MAX and PERST produce equivalent
// sequenced results (same timeslice at every sampled day).
func (r *Runner) CheckStrategiesAgree(q Query, days []int64) error {
	full := int(timelineEnd - timelineStart)
	r.DB.SetStrategy(taupsm.Max)
	maxRes, err := r.DB.Query(sequencedSQL(q, full))
	if err != nil {
		r.DB.SetStrategy(taupsm.Auto)
		return fmt.Errorf("%s MAX: %w", q.Name, err)
	}
	r.DB.SetStrategy(taupsm.PerStatement)
	psRes, err := r.DB.Query(sequencedSQL(q, full))
	r.DB.SetStrategy(taupsm.Auto)
	if err != nil {
		return fmt.Errorf("%s PERST: %w", q.Name, err)
	}
	for _, d := range days {
		ms, ps := timeslice(maxRes, d), timeslice(psRes, d)
		if strings.Join(ms, ";") != strings.Join(ps, ";") {
			return fmt.Errorf("%s: MAX and PERST disagree at %s\nMAX:   %v\nPERST: %v",
				q.Name, types.FormatDate(d), head(ms, 6), head(ps, 6))
		}
	}
	return nil
}

func head(ss []string, n int) []string {
	if len(ss) <= n {
		return ss
	}
	return append(append([]string{}, ss[:n]...), "...")
}
