package taubench

import (
	"bytes"
	"encoding/json"
	"testing"

	"taupsm"
)

func TestStageBreakdown(t *testing.T) {
	r := getRunner(t)
	s := r.StageBreakdown(queryByName(t, "q20"), taupsm.Max, 30)
	if s.Error != "" {
		t.Fatalf("unexpected error: %s", s.Error)
	}
	if s.Query != "q20" || s.Strategy != "MAX" || s.ContextDays != 30 {
		t.Fatalf("bad cell identity: %+v", s)
	}
	if s.TotalNS <= 0 || s.ExecuteNS <= 0 || s.TranslateNS <= 0 {
		t.Fatalf("stage durations not observed: %+v", s)
	}
	if s.ExecuteNS >= s.TotalNS {
		t.Fatalf("execute (%d) should be under total (%d)", s.ExecuteNS, s.TotalNS)
	}
	if s.Fragments <= 0 || s.ConstantPeriods <= 0 {
		t.Fatalf("missing slicing stats: %+v", s)
	}

	// A non-transformable cell carries the error, not numbers.
	bad := r.StageBreakdown(queryByName(t, "q17b"), taupsm.PerStatement, 7)
	if bad.Error == "" || bad.TotalNS != 0 {
		t.Fatalf("expected an error cell: %+v", bad)
	}
}

func TestMeasureOverheadAndJSON(t *testing.T) {
	r := getRunner(t)
	o := r.MeasureOverhead(7, 1)
	if o.OffNS <= 0 || o.OffRepeatNS <= 0 || o.SampledNS <= 0 {
		t.Fatalf("workload totals not measured: %+v", o)
	}
	if r.DB.TraceSampling() != 0 {
		t.Fatal("MeasureOverhead left sampling on")
	}
	// The sampled pass really landed spans in the buffer.
	if r.DB.TraceBuffer().Total() == 0 {
		t.Fatal("sampled pass recorded no spans")
	}

	rep := &ObsReport{Dataset: "DS1", Size: "SMALL", Reps: 1,
		Stages:   []StageStat{r.StageBreakdown(queryByName(t, "q20"), taupsm.Max, 7)},
		Overhead: []OverheadStat{o}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ObsReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if len(back.Stages) != 1 || back.Stages[0].Query != "q20" || len(back.Overhead) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
