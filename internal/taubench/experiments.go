package taubench

import (
	"errors"
	"fmt"
	"strings"

	"taupsm"
	"taupsm/internal/core"
	"taupsm/internal/sqlparser"
)

// Experiment drivers regenerating the paper's evaluation artifacts.
// Each returns the measurements plus a formatted text rendering of the
// same series the corresponding figure plots.

// Fig12 is the temporal-context sweep on DS1-SMALL: 16 queries x
// {1d, 1w, 1m, 1y} x {MAX, PERST}, with the derived query classes.
func Fig12() ([]Measurement, string, error) {
	return contextSweepFigure("Figure 12 - runtime vs temporal context, DS1-SMALL", DS1(Small),
		func(q Query) string { return q.ClassSmall })
}

// Fig13 is the same sweep on DS1-LARGE, compared against the paper's
// Figure-13 classes (several queries change class with size, §VII-C).
func Fig13() ([]Measurement, string, error) {
	return contextSweepFigure("Figure 13 - runtime vs temporal context, DS1-LARGE", DS1(Large),
		func(q Query) string { return q.ClassLarge })
}

func contextSweepFigure(title string, spec Spec, paperClass func(Query) string) ([]Measurement, string, error) {
	r, err := NewRunner(spec)
	if err != nil {
		return nil, "", err
	}
	ms := r.ContextSweep(ContextLengths)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n(dataset rows: %d, changes: %d)\n\n", title, r.Stats.Rows, r.Stats.Changes)
	b.WriteString(FormatTable(ms, func(m Measurement) string { return ContextLabel(m.Context) }))
	b.WriteString("\nquery classes (A=PERST always, B=crossover, C=MAX always, D=MAX first):\n")
	for _, q := range Queries() {
		fmt.Fprintf(&b, "  %-5s measured=%s paper=%s\n", q.Name, Classify(ms, q.Name), paperClass(q))
	}
	return ms, b.String(), nil
}

// Fig14 is the scalability experiment: sizes SMALL/MEDIUM/LARGE at a
// fixed one-month context.
func Fig14() ([]Measurement, string, error) {
	var all []Measurement
	var b strings.Builder
	b.WriteString("Figure 14 - runtime vs dataset size (DS1, 1-month context)\n\n")
	for _, size := range []Size{Small, Medium, Large} {
		r, err := NewRunner(DS1(size))
		if err != nil {
			return nil, "", err
		}
		for _, q := range Queries() {
			all = append(all, r.RunSequenced(q, taupsm.Max, 30))
			all = append(all, r.RunSequenced(q, taupsm.PerStatement, 30))
		}
	}
	b.WriteString(FormatTable(all, func(m Measurement) string { return m.Size.String() }))
	return all, b.String(), nil
}

// Fig15 compares data characteristics: DS1 (weekly/uniform), DS2
// (weekly/Gaussian) and DS3 (daily/uniform), SMALL, 1-month context.
func Fig15() ([]Measurement, string, error) {
	var all []Measurement
	var b strings.Builder
	b.WriteString("Figure 15 - varying data characteristics (SMALL, 1-month context)\n\n")
	for _, spec := range []Spec{DS1(Small), DS2(Small), DS3(Small)} {
		r, err := NewRunner(spec)
		if err != nil {
			return nil, "", err
		}
		for _, q := range Queries() {
			all = append(all, r.RunSequenced(q, taupsm.Max, 30))
			all = append(all, r.RunSequenced(q, taupsm.PerStatement, 30))
		}
	}
	b.WriteString(FormatTable(all, func(m Measurement) string { return m.Dataset }))
	return all, b.String(), nil
}

// LoCExperiment regenerates the §VII-B code-expansion accounting.
func LoCExperiment() (string, error) {
	r, err := NewRunner(Spec{Name: "DS1", Size: Small,
		Items: 20, Authors: 15, Publishers: 6, Slices: 4, StepDays: 7, ChangesPerStep: 4, Seed: 1})
	if err != nil {
		return "", err
	}
	es, err := CodeExpansion(r.DB)
	if err != nil {
		return "", err
	}
	return FormatExpansion(es), nil
}

// HeuristicPoint is one replayed data point for the §VII-F evaluation.
type HeuristicPoint struct {
	Measurement Measurement
	Winner      taupsm.Strategy // measured faster strategy
	Chosen      taupsm.Strategy // heuristic's choice
}

// queryFeatures probes the PERST translation for the heuristic's
// clause (a)/(b) inputs.
func queryFeatures(r *Runner, q Query, contextDays int) core.Features {
	f := core.Features{PerstTransformable: q.PerstOK, ContextDays: int64(contextDays)}
	stmt, err := sqlparser.ParseStatement(sequencedSQL(q, contextDays))
	if err != nil {
		return f
	}
	t, err := r.DB.TranslateStmt(stmt, taupsm.PerStatement)
	if err != nil {
		if errors.Is(err, core.ErrNotTransformable) {
			f.PerstTransformable = false
		}
		return f
	}
	f.UsesPerPeriodCursor = t.UsesPerPeriodCursor
	f.TemporalRows = r.Stats.Rows
	return f
}

// HeuristicEval replays measurements through the §VII-F heuristic:
// for every (query, x) point with both strategies measured, it compares
// the measured winner to the heuristic's choice. Rows maps
// (dataset, size) to the reachable temporal row count proxy.
func HeuristicEval(points []HeuristicPoint) string {
	var total, perstWins, wrong int
	for _, p := range points {
		total++
		if p.Winner == taupsm.PerStatement {
			perstWins++
		}
		if p.Chosen != p.Winner {
			wrong++
		}
	}
	var b strings.Builder
	b.WriteString("Heuristic evaluation (paper SVII-F)\n\n")
	fmt.Fprintf(&b, "data points:          %d   (paper: 160)\n", total)
	if total > 0 {
		fmt.Fprintf(&b, "PERST faster:         %d (%.0f%%)   (paper: ~70%%)\n",
			perstWins, 100*float64(perstWins)/float64(total))
		fmt.Fprintf(&b, "heuristic wrong:      %d (%.0f%%)   (paper: ~13%%)\n",
			wrong, 100*float64(wrong)/float64(total))
	}
	return b.String()
}

// CollectHeuristicPoints pairs the measurements of one experiment run
// with heuristic decisions; runnerOf resolves the runner that produced
// a measurement (for feature probing).
func CollectHeuristicPoints(ms []Measurement, runnerOf func(Measurement) *Runner) []HeuristicPoint {
	type key struct {
		ds    string
		size  Size
		query string
		ctx   int
	}
	grouped := map[key][2]*Measurement{}
	var order []key
	for i := range ms {
		m := &ms[i]
		k := key{m.Dataset, m.Size, m.Query, m.Context}
		pair, seen := grouped[k]
		if !seen {
			order = append(order, k)
		}
		if m.Strategy == taupsm.Max {
			pair[0] = m
		} else {
			pair[1] = m
		}
		grouped[k] = pair
	}
	var out []HeuristicPoint
	for _, k := range order {
		pair := grouped[k]
		if pair[0] == nil || pair[0].Err != nil {
			continue
		}
		winner := taupsm.Max
		if pair[1] != nil && pair[1].Err == nil && pair[1].Elapsed < pair[0].Elapsed {
			winner = taupsm.PerStatement
		}
		q, _ := QueryByName(k.query)
		r := runnerOf(*pair[0])
		f := queryFeatures(r, q, k.ctx)
		out = append(out, HeuristicPoint{
			Measurement: *pair[0],
			Winner:      winner,
			Chosen:      core.Choose(f),
		})
	}
	return out
}
