package stats

import (
	"math"
	"math/rand"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// temporalTable builds a valid-time table with the standard trailing
// begin_time/end_time layout and the given periods as rows.
func temporalTable(name string, periods ...[2]int64) *storage.Table {
	t := storage.NewTable(name, storage.NewSchema([]storage.Column{
		{Name: "id", Type: sqlast.TypeName{Base: "INTEGER"}},
		{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
	}))
	t.ValidTime = true
	for i, p := range periods {
		t.Rows = append(t.Rows, []types.Value{
			types.NewInt(int64(i)), types.NewInt(p[0]), types.NewInt(p[1]),
		})
	}
	return t
}

func row(id, b, e int64) []types.Value {
	return []types.Value{types.NewInt(id), types.NewInt(b), types.NewInt(e)}
}

func TestHistBucket(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's value range must be (BucketLow(i), 2^i]: the bound
	// itself lands in the bucket, the next value in the following one.
	for i := 1; i < HistBuckets-1; i++ {
		bound := int64(1) << uint(i)
		if histBucket(bound) != i {
			t.Errorf("2^%d must land in bucket %d, got %d", i, i, histBucket(bound))
		}
		if histBucket(bound+1) != i+1 {
			t.Errorf("2^%d+1 must land in bucket %d, got %d", i, i+1, histBucket(bound+1))
		}
		if BucketLow(i) != bound/2 {
			t.Errorf("BucketLow(%d) = %d, want %d", i, BucketLow(i), bound/2)
		}
	}
}

func TestIncrementalMatchesRecompute(t *testing.T) {
	// Drive a random DML history through the registry hooks against a
	// shadow table, with every operation sometimes reverted (statement
	// rollback); the incrementally maintained distribution must equal a
	// from-scratch recompute after every step.
	rng := rand.New(rand.NewSource(7))
	tab := temporalTable("h")
	reg := NewRegistry()
	reg.Reset("h", false) // entry exists, dirty; first read recomputes
	var nextID int64
	for step := 0; step < 500; step++ {
		revert := rng.Intn(4) == 0
		switch op := rng.Intn(3); {
		case op == 0 || len(tab.Rows) == 0: // insert
			b := int64(rng.Intn(100))
			r := row(nextID, b, b+1+int64(rng.Intn(50)))
			nextID++
			tab.Rows = append(tab.Rows, r)
			reg.NoteInsert(tab, r)
			if revert {
				tab.Rows = tab.Rows[:len(tab.Rows)-1]
				reg.RevertInsert(tab, r)
			}
		case op == 1: // delete a random row
			i := rng.Intn(len(tab.Rows))
			r := tab.Rows[i]
			tab.Rows = append(tab.Rows[:i], tab.Rows[i+1:]...)
			reg.NoteDelete(tab, r)
			if revert {
				tab.Rows = append(tab.Rows, r)
				reg.RevertDelete(tab, r)
			}
		default: // update a random row's period
			i := rng.Intn(len(tab.Rows))
			old := tab.Rows[i]
			b := int64(rng.Intn(100))
			upd := row(old[0].I, b, b+1+int64(rng.Intn(50)))
			tab.Rows[i] = upd
			reg.NoteUpdate(tab, old, upd)
			if revert {
				tab.Rows[i] = old
				reg.RevertUpdate(tab, old, upd)
			}
		}
		got := reg.DistributionOf(tab)
		want := RecomputeDistribution(tab)
		if !got.Equal(want) {
			t.Fatalf("step %d: incremental distribution diverged\n got %+v\nwant %+v", step, got, want)
		}
	}
}

func TestInteriorPointsAndRowsOverlapping(t *testing.T) {
	// Periods [10,20) [15,30) [20,40): endpoints {10,15,20,30,40}.
	tab := temporalTable("t", [2]int64{10, 20}, [2]int64{15, 30}, [2]int64{20, 40})
	reg := NewRegistry()

	cases := []struct {
		b, e                 int64
		wantPoints, wantRows int64
	}{
		{0, 100, 5, 3},                       // everything interior
		{10, 40, 3, 3},                       // bounds excluded: {15,20,30}
		{math.MinInt64, math.MaxInt64, 5, 3}, // whole timeline
		{12, 18, 1, 2},                       // {15}; overlaps rows 1 and 2
		{20, 40, 1, 2},                       // {30}; row [10,20) ends at 20 → excluded
		{40, 50, 0, 0},                       // past the extent
		{0, 10, 0, 0},                        // before the extent
		{15, 15, 0, 0},                       // empty context
	}
	for _, c := range cases {
		if got := reg.InteriorPoints(tab, c.b, c.e); got != c.wantPoints {
			t.Errorf("InteriorPoints(%d,%d) = %d, want %d", c.b, c.e, got, c.wantPoints)
		}
		if got := reg.RowsOverlapping(tab, c.b, c.e); got != c.wantRows {
			t.Errorf("RowsOverlapping(%d,%d) = %d, want %d", c.b, c.e, got, c.wantRows)
		}
	}

	// Non-temporal tables always report full row count.
	plain := temporalTable("p", [2]int64{1, 2})
	plain.ValidTime = false
	if got := reg.RowsOverlapping(plain, 100, 200); got != 1 {
		t.Errorf("non-temporal RowsOverlapping = %d, want 1", got)
	}
}

func TestAnalyzeSweep(t *testing.T) {
	// [10,20) [15,30) [20,40) [15,30): depth profile over the sorted
	// points {10,15,20,30,40} is 1,3,3,1 → max 3.
	tab := temporalTable("a",
		[2]int64{10, 20}, [2]int64{15, 30}, [2]int64{20, 40}, [2]int64{15, 30})
	reg := NewRegistry()
	snap := reg.Analyze(tab)
	if !snap.Analyzed || snap.AnalyzedRows != 4 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.DistinctPoints != 5 || snap.ConstantPeriods != 4 {
		t.Fatalf("points=%d periods=%d, want 5 and 4", snap.DistinctPoints, snap.ConstantPeriods)
	}
	if snap.MaxOverlap != 3 {
		t.Fatalf("MaxOverlap = %d, want 3", snap.MaxOverlap)
	}
	if !reg.HasAnalyzed(tab) {
		t.Fatal("HasAnalyzed must be true after Analyze")
	}
	// Depths 1,3,3,1 land in buckets histBucket(1)=0 (×2) and
	// histBucket(3)=2 (×2).
	p := reg.Persist()
	if len(p) != 1 {
		t.Fatalf("persist entries: %d", len(p))
	}
	wantHist := []int64{0, 2, 2, 2}
	if len(p[0].OverlapHist) != len(wantHist) {
		t.Fatalf("OverlapHist pairs = %v, want %v", p[0].OverlapHist, wantHist)
	}
	for i := range wantHist {
		if p[0].OverlapHist[i] != wantHist[i] {
			t.Fatalf("OverlapHist pairs = %v, want %v", p[0].OverlapHist, wantHist)
		}
	}
}

func TestPersistInstallRoundTrip(t *testing.T) {
	tab := temporalTable("r", [2]int64{1, 5}, [2]int64{2, 9})
	reg := NewRegistry()
	reg.NoteInsert(tab, tab.Rows[0])
	reg.NoteInsert(tab, tab.Rows[1])
	reg.NoteUpdate(tab, tab.Rows[1], tab.Rows[1])
	reg.Analyze(tab)

	reg2 := NewRegistry()
	reg2.Install(reg.Persist())
	s := reg2.Snapshot(tab) // dirty entry: distribution recomputed from rows
	if s.Inserts != 2 || s.Updates != 1 || s.Deletes != 0 {
		t.Fatalf("counters after round trip: %+v", s)
	}
	if !s.Analyzed || s.MaxOverlap != 2 || s.AnalyzedRows != 2 {
		t.Fatalf("analyze extras after round trip: %+v", s)
	}
	if s.RowCount != 2 || s.DistinctPoints != 4 {
		t.Fatalf("recomputed distribution after round trip: %+v", s)
	}
	// Replay continuation: counters fold in, zero-delta is a no-op.
	reg2.AddReplayDelta("r", 1, 0, 2)
	reg2.AddReplayDelta("r", 0, 0, 0)
	s = reg2.Snapshot(tab)
	if s.Inserts != 3 || s.Deletes != 2 {
		t.Fatalf("replay deltas: %+v", s)
	}
}

func TestResetDropRestore(t *testing.T) {
	tab := temporalTable("x", [2]int64{1, 2})
	reg := NewRegistry()
	reg.NoteInsert(tab, tab.Rows[0])

	prev := reg.Reset("x", true)
	if prev == nil || prev.Inserts != 1 {
		t.Fatalf("Reset must return the previous entry, got %+v", prev)
	}
	if s := reg.Snapshot(tab); s.Inserts != 1 {
		t.Fatalf("preserve must carry counters: %+v", s)
	}
	if prev2 := reg.Reset("x", false); prev2 == nil {
		t.Fatal("second Reset lost the entry")
	}
	if s := reg.Snapshot(tab); s.Inserts != 0 {
		t.Fatalf("non-preserving Reset must zero counters: %+v", s)
	}

	dropped := reg.Drop("x")
	if dropped == nil {
		t.Fatal("Drop must return the entry")
	}
	reg.Restore("x", prev)
	if s := reg.Snapshot(tab); s.Inserts != 1 {
		t.Fatalf("Restore must reinstate the saved entry: %+v", s)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	tab := temporalTable("n", [2]int64{1, 2})
	reg.NoteInsert(tab, tab.Rows[0])
	reg.NoteDelete(tab, tab.Rows[0])
	reg.NoteUpdate(tab, tab.Rows[0], tab.Rows[0])
	reg.Reset("n", true)
	reg.Drop("n")
	reg.Restore("n", nil)
	reg.Install(nil)
	reg.AddReplayDelta("n", 1, 1, 1)
	reg.NoteRoutineCall("p")
	reg.NoteStatement("d", "SELECT 1", "query", "", 0, false)
	if reg.HasAnalyzed(tab) || reg.RowCount(tab) != 0 {
		t.Fatal("nil registry must report zero values")
	}
	if reg.InteriorPoints(tab, 0, 10) != 0 || reg.RowsOverlapping(tab, 0, 10) != 0 {
		t.Fatal("nil registry estimates must be zero")
	}
}
