// Package stats maintains the workload and data statistics the
// stratum's strategy heuristic and EXPLAIN estimates consume: per-table
// temporal distributions (valid-time endpoint multisets, interval
// lengths, overlap depths) kept incrementally current by the engine's
// DML journal, and per-routine / per-statement workload profiles folded
// in from the observability plumbing.
//
// The table-level model has two tiers:
//
//   - The distribution (row count, endpoint multisets, interval-length
//     histogram) is maintained incrementally: every insert, update, and
//     delete — including their journal rollbacks — adjusts it in O(1),
//     so `ANALYZE` never needs to run for the distribution to be exact.
//     Entries created without a history (recovery, CREATE TABLE AS ...
//     WITH DATA) start dirty and are recomputed from the stored rows on
//     first read.
//   - ANALYZE extras (overlap-depth histogram, constant-period count
//     over the table's own extent) need a full sweep and are computed
//     only by ANALYZE; they are timestamps of the last scan, not live.
//
// DML counters (Inserts/Updates/Deletes) are history, not state: they
// are never derivable from the rows, so they are the part persisted
// through WAL checkpoints and re-accumulated from replayed commits.
package stats

import (
	"math/bits"
	"sort"
	"strings"
	"sync"

	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// HistBuckets is the bucket count of the package's log2 histograms:
// bucket 0 holds values <= 1, bucket i holds 2^(i-1) < v <= 2^i, and
// the last bucket absorbs everything beyond 2^62.
const HistBuckets = 40

// Histogram is a fixed log2 bucket vector (interval lengths in days,
// overlap depths in rows).
type Histogram [HistBuckets]int64

// histBucket maps a positive value to its log2 bucket.
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1)) // ceil(log2 v) for v >= 2
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketLow returns the exclusive lower bound of bucket i (inclusive
// upper bound is 2^i).
func BucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << uint(i-1)
}

// Table is one table's statistics entry. All access goes through a
// Registry, which serializes it; the exported counter fields are read
// directly by snapshot code holding the registry lock.
type Table struct {
	// DML history since creation (or recovery, seeded from the persisted
	// checkpoint record plus the replayed WAL tail).
	Inserts int64
	Updates int64
	Deletes int64

	// Distribution: incrementally maintained when fresh.
	rowCount int64
	begins   map[int64]int64 // valid-time begin multiset (temporal tables)
	ends     map[int64]int64 // valid-time end multiset
	lenSum   int64           // sum of interval lengths (end - begin)
	lenHist  Histogram
	dirty    bool // distribution must be recomputed from the stored rows

	// Lazily built sorted views over the multisets, invalidated by any
	// distribution change.
	viewsValid bool
	points     []int64 // sorted distinct endpoints (begins ∪ ends)
	beginVals  []int64 // sorted distinct begin values
	beginCum   []int64 // beginCum[i] = #rows with begin <= beginVals[i]
	endVals    []int64
	endCum     []int64

	// ANALYZE extras: computed by the last full sweep only.
	Analyzed        bool
	AnalyzedRows    int64
	AnalyzedPeriods int64 // constant periods over the table's own extent
	MaxOverlap      int64 // peak overlap depth seen by the last ANALYZE
	OverlapHist     Histogram
}

// Registry is the statistics store shared by every engine session of
// one database: table entries keyed by lowercase table name, plus the
// workload profiles. All methods are safe for concurrent use and
// nil-receiver safe, so hook sites need no guard.
type Registry struct {
	mu         sync.Mutex
	tables     map[string]*Table
	routines   map[string]*RoutineProfile
	statements map[string]*StatementProfile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		tables:     map[string]*Table{},
		routines:   map[string]*RoutineProfile{},
		statements: map[string]*StatementProfile{},
	}
}

func key(name string) string { return strings.ToLower(name) }

// entryLocked returns the named entry, creating a dirty one on first
// sight (a table that predates the registry, or arrived by recovery).
func (r *Registry) entryLocked(name string) *Table {
	e, ok := r.tables[key(name)]
	if !ok {
		e = &Table{dirty: true}
		r.tables[key(name)] = e
	}
	return e
}

// rowPeriod extracts a temporal row's valid-time endpoints.
func rowPeriod(t *storage.Table, row []types.Value) (int64, int64, bool) {
	if !t.ValidTime && !t.TransactionTime {
		return 0, 0, false
	}
	bc, ec := t.BeginCol(), t.EndCol()
	if bc < 0 || ec >= len(row) {
		return 0, 0, false
	}
	return row[bc].I, row[ec].I, true
}

// addRow folds one row into the distribution (sign +1) or removes it
// (sign -1). No-op while dirty: the eventual recompute sees the final
// rows anyway.
func (e *Table) addRow(t *storage.Table, row []types.Value, sign int64) {
	e.rowCount += sign
	if e.dirty {
		return
	}
	b, end, ok := rowPeriod(t, row)
	if !ok {
		e.viewsValid = false
		return
	}
	if e.begins == nil {
		e.begins, e.ends = map[int64]int64{}, map[int64]int64{}
	}
	bumpMultiset(e.begins, b, sign)
	bumpMultiset(e.ends, end, sign)
	e.lenSum += sign * (end - b)
	e.lenHist[histBucket(end-b)] += sign
	e.viewsValid = false
}

func bumpMultiset(m map[int64]int64, v, sign int64) {
	n := m[v] + sign
	if n == 0 {
		delete(m, v)
	} else {
		m[v] = n
	}
}

// NoteInsert records a row insertion.
func (r *Registry) NoteInsert(t *storage.Table, row []types.Value) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(t.Name)
	e.Inserts++
	e.addRow(t, row, 1)
	r.mu.Unlock()
}

// RevertInsert undoes NoteInsert (statement rollback).
func (r *Registry) RevertInsert(t *storage.Table, row []types.Value) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(t.Name)
	e.Inserts--
	e.addRow(t, row, -1)
	r.mu.Unlock()
}

// NoteDelete records a row deletion; row is the removed row.
func (r *Registry) NoteDelete(t *storage.Table, row []types.Value) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(t.Name)
	e.Deletes++
	e.addRow(t, row, -1)
	r.mu.Unlock()
}

// RevertDelete undoes NoteDelete.
func (r *Registry) RevertDelete(t *storage.Table, row []types.Value) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(t.Name)
	e.Deletes--
	e.addRow(t, row, 1)
	r.mu.Unlock()
}

// NoteUpdate records an in-place row mutation: old holds the
// pre-mutation values, new the current ones.
func (r *Registry) NoteUpdate(t *storage.Table, old, new []types.Value) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(t.Name)
	e.Updates++
	e.addRow(t, old, -1)
	e.addRow(t, new, 1)
	r.mu.Unlock()
}

// RevertUpdate undoes NoteUpdate.
func (r *Registry) RevertUpdate(t *storage.Table, old, new []types.Value) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(t.Name)
	e.Updates--
	e.addRow(t, new, -1)
	e.addRow(t, old, 1)
	r.mu.Unlock()
}

// Reset installs a fresh entry for a created or replaced table and
// returns the previous entry (nil if none) so DDL rollback can restore
// it. preserve carries the old entry's DML counters forward (ALTER ADD
// VALIDTIME replaces the table object but not the table's history).
func (r *Registry) Reset(name string, preserve bool) *Table {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.tables[key(name)]
	e := &Table{dirty: true}
	if preserve && prev != nil {
		e.Inserts, e.Updates, e.Deletes = prev.Inserts, prev.Updates, prev.Deletes
	}
	r.tables[key(name)] = e
	return prev
}

// Drop removes a table's entry and returns it for rollback restoration.
func (r *Registry) Drop(name string) *Table {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.tables[key(name)]
	delete(r.tables, key(name))
	return prev
}

// Restore puts back an entry removed or replaced by Reset/Drop.
func (r *Registry) Restore(name string, prev *Table) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev == nil {
		delete(r.tables, key(name))
	} else {
		r.tables[key(name)] = prev
	}
}

// recomputeLocked rebuilds the distribution from the stored rows.
func (e *Table) recomputeLocked(t *storage.Table) {
	e.rowCount = int64(len(t.Rows))
	e.begins, e.ends = map[int64]int64{}, map[int64]int64{}
	e.lenSum = 0
	e.lenHist = Histogram{}
	for _, row := range t.Rows {
		b, end, ok := rowPeriod(t, row)
		if !ok {
			continue
		}
		e.begins[b]++
		e.ends[end]++
		e.lenSum += end - b
		e.lenHist[histBucket(end-b)]++
	}
	e.dirty = false
	e.viewsValid = false
}

// freshLocked makes the entry's distribution current, recomputing from
// the table when dirty.
func (r *Registry) freshLocked(t *storage.Table) *Table {
	e := r.entryLocked(t.Name)
	if e.dirty {
		e.recomputeLocked(t)
	}
	return e
}

// buildViewsLocked rebuilds the sorted multiset views.
func (e *Table) buildViewsLocked() {
	if e.viewsValid {
		return
	}
	e.beginVals, e.beginCum = sortedCum(e.begins)
	e.endVals, e.endCum = sortedCum(e.ends)
	e.points = e.points[:0]
	seen := make(map[int64]struct{}, len(e.begins)+len(e.ends))
	for v := range e.begins {
		seen[v] = struct{}{}
	}
	for v := range e.ends {
		seen[v] = struct{}{}
	}
	for v := range seen {
		e.points = append(e.points, v)
	}
	sort.Slice(e.points, func(i, j int) bool { return e.points[i] < e.points[j] })
	e.viewsValid = true
}

// sortedCum renders a multiset as sorted distinct values with running
// cumulative multiplicities.
func sortedCum(m map[int64]int64) ([]int64, []int64) {
	vals := make([]int64, 0, len(m))
	for v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	cum := make([]int64, len(vals))
	var run int64
	for i, v := range vals {
		run += m[v]
		cum[i] = run
	}
	return vals, cum
}

// countLE returns the number of multiset elements <= v.
func countLE(vals, cum []int64, v int64) int64 {
	i := sort.Search(len(vals), func(i int) bool { return vals[i] > v })
	if i == 0 {
		return 0
	}
	return cum[i-1]
}

// InteriorPoints returns the number of distinct stored valid-time
// endpoints strictly inside (b, e) — the exact per-table term of the
// constant-period count temporal.ConstantPeriods would produce for
// that context.
func (r *Registry) InteriorPoints(t *storage.Table, b, e int64) int64 {
	if r == nil || t == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := r.freshLocked(t)
	ent.buildViewsLocked()
	lo := sort.Search(len(ent.points), func(i int) bool { return ent.points[i] > b })
	hi := sort.Search(len(ent.points), func(i int) bool { return ent.points[i] >= e })
	if hi < lo {
		return 0
	}
	return int64(hi - lo)
}

// RowsOverlapping estimates the number of stored rows whose valid-time
// period overlaps the context (b, e) under the stratum's fragment
// predicate begin < e && b < end. For a fresh entry the estimate is
// exact: it is row count minus the rows ending at or before b minus
// the rows beginning at or after e, both read off the endpoint
// multisets. Non-temporal tables report their full row count.
func (r *Registry) RowsOverlapping(t *storage.Table, b, e int64) int64 {
	if r == nil || t == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := r.freshLocked(t)
	if !t.ValidTime && !t.TransactionTime {
		return ent.rowCount
	}
	if b >= e {
		return 0
	}
	ent.buildViewsLocked()
	endsBefore := countLE(ent.endVals, ent.endCum, b)
	totalBegins := int64(0)
	if n := len(ent.beginCum); n > 0 {
		totalBegins = ent.beginCum[n-1]
	}
	beginsAfter := totalBegins - countLE(ent.beginVals, ent.beginCum, e-1)
	n := ent.rowCount - endsBefore - beginsAfter
	if n < 0 {
		n = 0
	}
	return n
}

// HasAnalyzed reports whether the table has been ANALYZEd (this run or
// a recovered one). The stratum's estimate layer activates only then:
// statistics-informed decisions are an opt-in the user makes by running
// ANALYZE, exactly as with conventional optimizer statistics.
func (r *Registry) HasAnalyzed(t *storage.Table) bool {
	if r == nil || t == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent, ok := r.tables[key(t.Name)]
	return ok && ent.Analyzed
}

// OverlapDepth returns the table's peak overlap depth as recorded by
// the last ANALYZE, with ok=false when the table was never ANALYZEd.
// Like every ANALYZE extra it is a point-in-time figure — DML since
// the sweep is not reflected — which is exactly the conventional
// optimizer-statistics contract the consumers (the sweep-join cost
// model, EXPLAIN's join row) are written against.
func (r *Registry) OverlapDepth(t *storage.Table) (int64, bool) {
	if r == nil || t == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent, ok := r.tables[key(t.Name)]
	if !ok || !ent.Analyzed {
		return 0, false
	}
	return ent.MaxOverlap, true
}

// RowCount returns the table's current row count (recomputed if dirty).
func (r *Registry) RowCount(t *storage.Table) int64 {
	if r == nil || t == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freshLocked(t).rowCount
}

// Analyze runs the full statistics sweep over one table: the
// distribution is recomputed from scratch and the ANALYZE extras
// (overlap-depth histogram, peak depth, constant-period count over the
// table's own extent) are rebuilt with a sweep-line pass. Returns the
// resulting snapshot.
func (r *Registry) Analyze(t *storage.Table) TableSnapshot {
	if r == nil || t == nil {
		return TableSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryLocked(t.Name)
	e.recomputeLocked(t)
	e.buildViewsLocked()
	e.Analyzed = true
	e.AnalyzedRows = e.rowCount
	e.AnalyzedPeriods = 0
	e.MaxOverlap = 0
	e.OverlapHist = Histogram{}
	if n := len(e.points); n > 1 {
		e.AnalyzedPeriods = int64(n - 1)
		// Sweep the distinct endpoints left to right; between consecutive
		// points the overlap depth is constant: +begins entering, -ends
		// leaving.
		var depth int64
		for i := 0; i < n-1; i++ {
			depth += e.begins[e.points[i]] - e.ends[e.points[i]]
			if depth > e.MaxOverlap {
				e.MaxOverlap = depth
			}
			if depth > 0 {
				e.OverlapHist[histBucket(depth)]++
			}
		}
	}
	return e.snapshotLocked(t.Name, t)
}

// TableSnapshot is one table's statistics as exposed by the
// tau_stat_tables system table and the /statistics endpoint.
type TableSnapshot struct {
	Name            string  `json:"name"`
	Temporal        bool    `json:"temporal"`
	RowCount        int64   `json:"row_count"`
	Inserts         int64   `json:"inserts"`
	Updates         int64   `json:"updates"`
	Deletes         int64   `json:"deletes"`
	DistinctPoints  int64   `json:"distinct_points"`
	ConstantPeriods int64   `json:"constant_periods"`
	PeriodDensity   float64 `json:"period_density"`
	AvgIntervalDays float64 `json:"avg_interval_days"`
	Analyzed        bool    `json:"analyzed"`
	AnalyzedRows    int64   `json:"analyzed_rows,omitempty"`
	MaxOverlap      int64   `json:"max_overlap,omitempty"`
}

// snapshotLocked renders the entry; the distribution must be fresh.
func (e *Table) snapshotLocked(name string, t *storage.Table) TableSnapshot {
	e.buildViewsLocked()
	s := TableSnapshot{
		Name:     name,
		Temporal: t.ValidTime || t.TransactionTime,
		RowCount: e.rowCount,
		Inserts:  e.Inserts,
		Updates:  e.Updates,
		Deletes:  e.Deletes,
		Analyzed: e.Analyzed,
	}
	s.DistinctPoints = int64(len(e.points))
	if len(e.points) > 1 {
		s.ConstantPeriods = int64(len(e.points) - 1)
	}
	if e.rowCount > 0 && s.Temporal {
		s.PeriodDensity = float64(s.ConstantPeriods) / float64(e.rowCount)
		s.AvgIntervalDays = float64(e.lenSum) / float64(e.rowCount)
	}
	if e.Analyzed {
		s.AnalyzedRows = e.AnalyzedRows
		s.MaxOverlap = e.MaxOverlap
	}
	return s
}

// Snapshot returns one table's statistics, freshening the distribution
// first.
func (r *Registry) Snapshot(t *storage.Table) TableSnapshot {
	if r == nil || t == nil {
		return TableSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freshLocked(t).snapshotLocked(t.Name, t)
}

// TableSnapshots renders every non-temporary catalog table's
// statistics, sorted by name. Entries without a catalog table (dropped
// tables, stale persistence) are invisible.
func (r *Registry) TableSnapshots(cat *storage.Catalog) []TableSnapshot {
	if r == nil || cat == nil {
		return nil
	}
	names := cat.TableNames()
	sort.Strings(names)
	out := make([]TableSnapshot, 0, len(names))
	for _, name := range names {
		t := cat.Table(name)
		if t == nil || t.Temporary {
			continue
		}
		out = append(out, r.Snapshot(t))
	}
	return out
}

// Distribution is a comparable copy of a table entry's incremental
// state, for the incremental-vs-recomputed property tests.
type Distribution struct {
	RowCount int64
	Begins   []int64 // sorted, multiplicities expanded
	Ends     []int64
	LenSum   int64
	LenHist  Histogram
}

// expand renders a multiset as a sorted value list with repeats.
func expand(m map[int64]int64) []int64 {
	var out []int64
	for v, n := range m {
		for i := int64(0); i < n; i++ {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistributionOf copies the incrementally maintained distribution
// without freshening it — the point is to observe what the increments
// produced. A dirty entry freshens first (there is nothing incremental
// to observe yet).
func (r *Registry) DistributionOf(t *storage.Table) Distribution {
	if r == nil || t == nil {
		return Distribution{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.freshLocked(t)
	return Distribution{
		RowCount: e.rowCount,
		Begins:   expand(e.begins),
		Ends:     expand(e.ends),
		LenSum:   e.lenSum,
		LenHist:  e.lenHist,
	}
}

// RecomputeDistribution builds a table's distribution from scratch, the
// reference the property tests compare the incremental state against.
func RecomputeDistribution(t *storage.Table) Distribution {
	var e Table
	e.dirty = true
	e.recomputeLocked(t)
	return Distribution{
		RowCount: e.rowCount,
		Begins:   expand(e.begins),
		Ends:     expand(e.ends),
		LenSum:   e.lenSum,
		LenHist:  e.lenHist,
	}
}

// Equal reports whether two distributions match exactly.
func (d Distribution) Equal(o Distribution) bool {
	if d.RowCount != o.RowCount || d.LenSum != o.LenSum || d.LenHist != o.LenHist {
		return false
	}
	return int64SlicesEqual(d.Begins, o.Begins) && int64SlicesEqual(d.Ends, o.Ends)
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------- checkpoint persistence ----------

// TablePersist is the non-derivable slice of one table's entry: the DML
// history and the last ANALYZE's extras. The distribution itself is
// rebuilt from the recovered rows (entries load dirty).
type TablePersist struct {
	Name            string
	Inserts         int64
	Updates         int64
	Deletes         int64
	Analyzed        bool
	AnalyzedRows    int64
	AnalyzedPeriods int64
	MaxOverlap      int64
	OverlapHist     []int64 // sparse (bucket, count) pairs flattened
}

// Persist renders every tracked table's persistent state, sorted by
// name for deterministic snapshots.
func (r *Registry) Persist() []TablePersist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.tables))
	for n := range r.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TablePersist, 0, len(names))
	for _, n := range names {
		e := r.tables[n]
		p := TablePersist{
			Name: n, Inserts: e.Inserts, Updates: e.Updates, Deletes: e.Deletes,
			Analyzed: e.Analyzed, AnalyzedRows: e.AnalyzedRows,
			AnalyzedPeriods: e.AnalyzedPeriods, MaxOverlap: e.MaxOverlap,
		}
		for i, c := range e.OverlapHist {
			if c != 0 {
				p.OverlapHist = append(p.OverlapHist, int64(i), c)
			}
		}
		out = append(out, p)
	}
	return out
}

// Install seeds the registry from persisted state; entries load dirty
// so the distribution is recomputed from the recovered rows on first
// read.
func (r *Registry) Install(ps []TablePersist) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range ps {
		e := &Table{
			Inserts: p.Inserts, Updates: p.Updates, Deletes: p.Deletes,
			Analyzed: p.Analyzed, AnalyzedRows: p.AnalyzedRows,
			AnalyzedPeriods: p.AnalyzedPeriods, MaxOverlap: p.MaxOverlap,
			dirty: true,
		}
		for i := 0; i+1 < len(p.OverlapHist); i += 2 {
			if b := p.OverlapHist[i]; b >= 0 && b < HistBuckets {
				e.OverlapHist[b] = p.OverlapHist[i+1]
			}
		}
		r.tables[key(p.Name)] = e
	}
}

// AddReplayDelta folds one replayed WAL commit's DML counts into a
// table's history (recovery's counter continuation past the persisted
// checkpoint).
func (r *Registry) AddReplayDelta(name string, inserts, updates, deletes int64) {
	if r == nil || (inserts == 0 && updates == 0 && deletes == 0) {
		return
	}
	r.mu.Lock()
	e := r.entryLocked(name)
	e.Inserts += inserts
	e.Updates += updates
	e.Deletes += deletes
	r.mu.Unlock()
}
