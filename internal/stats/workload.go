package stats

import (
	"sort"
	"sync/atomic"
	"time"
)

// RoutineProfile aggregates one stored routine's workload: every
// logical invocation counts (memo hits included — they answer a call),
// while the timing aggregates cover only traced executions, folded in
// from the engine's routine spans so the untraced hot path stays one
// atomic increment.
type RoutineProfile struct {
	calls       atomic.Int64
	tracedCalls atomic.Int64
	tracedNS    atomic.Int64
}

// RoutineSnapshot is one routine's profile as exposed by the
// tau_stat_routines system table and the /statistics endpoint.
type RoutineSnapshot struct {
	Name         string `json:"name"`
	Calls        int64  `json:"calls"`
	TracedCalls  int64  `json:"traced_calls,omitempty"`
	TracedNS     int64  `json:"traced_ns,omitempty"`
	TracedMeanNS int64  `json:"traced_mean_ns,omitempty"`
}

// routineEntry returns the named profile, creating it on first call.
// The read-path fast case is a map lookup under the registry lock; the
// returned counters are lock-free.
func (r *Registry) routineEntry(name string) *RoutineProfile {
	r.mu.Lock()
	p, ok := r.routines[key(name)]
	if !ok {
		p = &RoutineProfile{}
		r.routines[key(name)] = p
	}
	r.mu.Unlock()
	return p
}

// NoteRoutineCall counts one logical routine invocation.
func (r *Registry) NoteRoutineCall(name string) {
	if r == nil {
		return
	}
	r.routineEntry(name).calls.Add(1)
}

// NoteRoutineTime folds one traced routine execution's duration in.
func (r *Registry) NoteRoutineTime(name string, d time.Duration) {
	if r == nil {
		return
	}
	p := r.routineEntry(name)
	p.tracedCalls.Add(1)
	p.tracedNS.Add(int64(d))
}

// RoutineSnapshots lists every profiled routine sorted by name.
func (r *Registry) RoutineSnapshots() []RoutineSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.routines))
	for n := range r.routines {
		names = append(names, n)
	}
	ps := make(map[string]*RoutineProfile, len(r.routines))
	for n, p := range r.routines {
		ps[n] = p
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]RoutineSnapshot, 0, len(names))
	for _, n := range names {
		p := ps[n]
		s := RoutineSnapshot{
			Name:        n,
			Calls:       p.calls.Load(),
			TracedCalls: p.tracedCalls.Load(),
			TracedNS:    p.tracedNS.Load(),
		}
		if s.TracedCalls > 0 {
			s.TracedMeanNS = s.TracedNS / s.TracedCalls
		}
		out = append(out, s)
	}
	return out
}

// StatementProfile aggregates every execution of one statement digest
// (the FNV-1a of the statement's rendered SQL — stable across restarts
// and parameter-free rewrites).
type StatementProfile struct {
	Digest       string
	Text         string // first-seen statement text, truncated
	Kind         string
	Calls        int64
	Errors       int64
	TotalNS      int64
	MaxNS        int64
	LastStrategy string
}

// StatementSnapshot is one digest's profile as exposed by the
// tau_stat_statements system table and the /statistics endpoint.
type StatementSnapshot struct {
	Digest       string `json:"digest"`
	Kind         string `json:"kind"`
	Calls        int64  `json:"calls"`
	Errors       int64  `json:"errors,omitempty"`
	TotalNS      int64  `json:"total_ns"`
	MeanNS       int64  `json:"mean_ns"`
	MaxNS        int64  `json:"max_ns"`
	LastStrategy string `json:"last_strategy,omitempty"`
	Text         string `json:"text"`
}

// statementTextMax bounds the sample text a profile keeps.
const statementTextMax = 240

// NoteStatement folds one finished top-level statement into its digest
// profile.
func (r *Registry) NoteStatement(digest, text, kind, strategy string, d time.Duration, failed bool) {
	if r == nil || digest == "" {
		return
	}
	r.mu.Lock()
	p, ok := r.statements[digest]
	if !ok {
		if len(text) > statementTextMax {
			text = text[:statementTextMax] + "..."
		}
		p = &StatementProfile{Digest: digest, Text: text, Kind: kind}
		r.statements[digest] = p
	}
	p.Calls++
	if failed {
		p.Errors++
	}
	p.TotalNS += int64(d)
	if int64(d) > p.MaxNS {
		p.MaxNS = int64(d)
	}
	if strategy != "" {
		p.LastStrategy = strategy
	}
	r.mu.Unlock()
}

// StatementSnapshots lists every statement profile, most total time
// first (ties broken by digest for determinism).
func (r *Registry) StatementSnapshots() []StatementSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]StatementSnapshot, 0, len(r.statements))
	for _, p := range r.statements {
		s := StatementSnapshot{
			Digest: p.Digest, Kind: p.Kind, Calls: p.Calls, Errors: p.Errors,
			TotalNS: p.TotalNS, MaxNS: p.MaxNS, LastStrategy: p.LastStrategy,
			Text: p.Text,
		}
		if p.Calls > 0 {
			s.MeanNS = p.TotalNS / p.Calls
		}
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}
