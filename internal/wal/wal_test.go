package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// dumpCatalog renders a catalog deterministically so tests can compare
// recovered state against a reference.
func dumpCatalog(cat *storage.Catalog) string {
	var b strings.Builder
	tables := cat.TableNames()
	sort.Strings(tables)
	for _, name := range tables {
		t := cat.Table(name)
		fmt.Fprintf(&b, "table %s valid=%v trans=%v cols=%v\n", t.Name, t.ValidTime, t.TransactionTime, t.Schema.Cols)
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "  %v\n", row)
		}
	}
	views := cat.ViewNames()
	sort.Strings(views)
	for _, name := range views {
		fmt.Fprintf(&b, "view %s: %s\n", name, renderViewSQL(cat.View(name)))
	}
	routines := cat.RoutineNames()
	sort.Strings(routines)
	for _, name := range routines {
		fmt.Fprintf(&b, "routine %s: %s\n", name, renderRoutineSQL(cat.Routine(name)))
	}
	return b.String()
}

// testCatalog builds a catalog exercising every effect kind and value
// kind the log can carry.
func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	effects := []storage.Effect{
		{Kind: storage.EffPutTable, Name: "m", ValidTime: true, Cols: []storage.EffectColumn{
			{Name: "id", Base: "INTEGER"},
			{Name: "name", Base: "CHAR", Length: 10},
			{Name: "w", Base: "DECIMAL", Length: 8, Scale: 2},
			{Name: "begin_time", Base: "DATE"},
			{Name: "end_time", Base: "DATE"},
		}},
		{Kind: storage.EffInsert, Name: "m", Row: []types.Value{
			types.NewInt(1), types.NewString("ann"), types.NewFloat(1.5),
			types.NewDate(types.MustDate(2010, 1, 1)), types.NewDate(types.Forever),
		}},
		{Kind: storage.EffInsert, Name: "m", Row: []types.Value{
			types.NewInt(2), types.Null, types.NewFloat(-2.25),
			types.NewDate(types.MustDate(2011, 6, 15)), types.NewDate(types.Forever),
		}},
		{Kind: storage.EffPutView, Name: "v", SQL: "CREATE VIEW v AS SELECT id FROM m;"},
		{Kind: storage.EffPutRoutine, Name: "f", SQL: "CREATE FUNCTION f (x INTEGER) RETURNS INTEGER RETURN x + 1;"},
	}
	if err := applyAll(cat, effects); err != nil {
		t.Fatalf("applyAll: %v", err)
	}
	return cat
}

func TestRecordRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{recSnapEnd}, []byte("hello"), make([]byte, 10000)}
	for _, p := range payloads {
		if _, err := writeRecord(&buf, p); err != nil {
			t.Fatalf("writeRecord: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := readRecord(&buf)
		if err != nil {
			t.Fatalf("readRecord %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q want %q", i, got, want)
		}
	}
	if _, err := readRecord(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestRecordTornAndCorrupt(t *testing.T) {
	var full bytes.Buffer
	if _, err := writeRecord(&full, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	whole := full.Bytes()

	// Every proper prefix must read as a torn tail, never as valid.
	for cut := 1; cut < len(whole); cut++ {
		_, err := readRecord(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: read succeeded", cut)
		}
		if !tornTail(err) {
			t.Fatalf("cut at %d: error %v is not a torn tail", cut, err)
		}
	}

	// Any single flipped payload byte must fail the checksum.
	for i := 8; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x40
		if _, err := readRecord(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", i, err)
		}
	}

	// An absurd declared length is corruption, not an allocation.
	hdr := make([]byte, 8)
	hdr[3] = 0xFF // length 0xFF000000 > maxRecord
	if _, err := readRecord(bytes.NewReader(hdr)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("giant length: got %v, want ErrCorrupt", err)
	}
}

func TestCommitRoundtrip(t *testing.T) {
	effects := []storage.Effect{
		{Kind: storage.EffInsert, Name: "t", Row: []types.Value{
			types.NewInt(7), types.NewString("x"), types.Null, types.NewFloat(2.5),
			{Kind: types.KindBool, I: 1}, types.NewDate(types.MustDate(2010, 3, 1)),
		}},
		{Kind: storage.EffUpdate, Name: "t", Index: 3, Row: []types.Value{types.NewInt(8)}},
		{Kind: storage.EffDelete, Name: "t", Index: 0},
		{Kind: storage.EffPutTable, Name: "u", ValidTime: true, TransactionTime: true,
			Cols: []storage.EffectColumn{{Name: "a", Base: "DECIMAL", Length: 10, Scale: 2}}},
		{Kind: storage.EffDropTable, Name: "u"},
		{Kind: storage.EffPutView, Name: "v", SQL: "CREATE VIEW v AS SELECT 1;"},
		{Kind: storage.EffDropView, Name: "v"},
		{Kind: storage.EffPutRoutine, Name: "f", SQL: "CREATE FUNCTION f () RETURNS INTEGER RETURN 1;"},
		{Kind: storage.EffDropRoutine, Name: "f"},
	}
	payload, err := encodeCommit(effects)
	if err != nil {
		t.Fatalf("encodeCommit: %v", err)
	}
	got, err := DecodeCommit(payload)
	if err != nil {
		t.Fatalf("DecodeCommit: %v", err)
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", effects) {
		t.Fatalf("roundtrip mismatch:\n got %v\nwant %v", got, effects)
	}

	// Truncating the payload anywhere must error, never panic.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeCommit(payload[:cut]); err == nil {
			t.Fatalf("cut at %d: decode of truncated payload succeeded", cut)
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	cat := testCatalog(t)
	fs := NewMemFS()
	f, err := fs.Create("s.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeSnapshot(f, cat, nil, 42); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	f.Close()

	rf, err := fs.Open("s.tmp")
	if err != nil {
		t.Fatal(err)
	}
	got, _, epoch, err := readSnapshot(rf)
	if err != nil {
		t.Fatalf("readSnapshot: %v", err)
	}
	if epoch != 42 {
		t.Fatalf("epoch = %d, want 42", epoch)
	}
	if d1, d2 := dumpCatalog(cat), dumpCatalog(got); d1 != d2 {
		t.Fatalf("snapshot changed the catalog:\n--- in\n%s--- out\n%s", d1, d2)
	}
}

func TestSnapshotSkipsTemporaryTables(t *testing.T) {
	cat := testCatalog(t)
	tmp := storage.NewTable("scratch", storage.NewSchema(nil))
	tmp.Temporary = true
	cat.PutTable(tmp)

	fs := NewMemFS()
	f, _ := fs.Create("s")
	if _, err := writeSnapshot(f, cat, nil, 1); err != nil {
		t.Fatal(err)
	}
	rf, _ := fs.Open("s")
	got, _, _, err := readSnapshot(rf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table("scratch") != nil {
		t.Fatal("temporary table survived the snapshot")
	}
}

func TestSnapshotIncompleteIsCorrupt(t *testing.T) {
	cat := testCatalog(t)
	fs := NewMemFS()
	f, _ := fs.Create("s")
	if _, err := writeSnapshot(f, cat, nil, 1); err != nil {
		t.Fatal(err)
	}
	data := fs.files["s"].data

	// Chop off the end marker (and more): must be ErrCorrupt so recovery
	// falls back to an older epoch instead of trusting a partial image.
	for _, cut := range []int{len(data) - 1, len(data) - 9, len(data) / 2, 3} {
		img := NewMemFS()
		img.files["s"] = &memFile{data: append([]byte(nil), data[:cut]...), synced: cut}
		rf, _ := img.Open("s")
		if _, _, _, err := readSnapshot(rf); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestOpenEmptyDirectory(t *testing.T) {
	fs := NewMemFS()
	st, cat, info, err := Open(fs, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if len(cat.TableNames()) != 0 || info.SnapshotEpoch != 0 || info.Commits != 0 {
		t.Fatalf("fresh open not empty: %v / %+v", cat.TableNames(), info)
	}
	if info.Epoch != 1 {
		t.Fatalf("fresh epoch = %d, want 1", info.Epoch)
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	fs := NewMemFS()
	st, cat, _, err := Open(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	eff := []storage.Effect{
		{Kind: storage.EffPutTable, Name: "t", Cols: []storage.EffectColumn{{Name: "x", Base: "INTEGER"}}},
		{Kind: storage.EffInsert, Name: "t", Row: []types.Value{types.NewInt(11)}},
	}
	if err := applyAll(cat, eff); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(eff); err != nil {
		t.Fatalf("Append: %v", err)
	}
	want := dumpCatalog(cat)
	st.Close()

	st2, cat2, info, err := Open(fs.CrashImage(), nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if got := dumpCatalog(cat2); got != want {
		t.Fatalf("recovered state differs:\n--- want\n%s--- got\n%s", want, got)
	}
	if info.Commits != 1 || info.Effects != 2 {
		t.Fatalf("info = %+v, want 1 commit / 2 effects", info)
	}
}

func TestTornLogTailTruncated(t *testing.T) {
	fs := NewMemFS()
	st, cat, _, err := Open(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	put := []storage.Effect{{Kind: storage.EffPutTable, Name: "t", Cols: []storage.EffectColumn{{Name: "x", Base: "INTEGER"}}}}
	ins1 := []storage.Effect{{Kind: storage.EffInsert, Name: "t", Row: []types.Value{types.NewInt(1)}}}
	ins2 := []storage.Effect{{Kind: storage.EffInsert, Name: "t", Row: []types.Value{types.NewInt(2)}}}
	for _, batch := range [][]storage.Effect{put, ins1} {
		applyAll(cat, batch)
		if err := st.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpCatalog(cat)
	epoch := st.Epoch()
	applyAll(cat, ins2)
	if err := st.Append(ins2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear off part of the last commit record: recovery must keep the
	// first two statements and report the truncation.
	img := fs.CrashImage()
	name := walName(epoch)
	data := img.files[name].data
	img.files[name] = &memFile{data: data[:len(data)-5], synced: len(data) - 5}

	st2, cat2, info, err := Open(img, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if info.Commits != 2 {
		t.Fatalf("replayed %d commits, want 2", info.Commits)
	}
	if got := dumpCatalog(cat2); got != want {
		t.Fatalf("prefix state differs:\n--- want\n%s--- got\n%s", want, got)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	fs := NewMemFS()
	st, cat, _, err := Open(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	put := []storage.Effect{{Kind: storage.EffPutTable, Name: "t", Cols: []storage.EffectColumn{{Name: "x", Base: "INTEGER"}}}}
	applyAll(cat, put)
	if err := st.Append(put); err != nil {
		t.Fatal(err)
	}
	want := dumpCatalog(cat)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	epoch2 := st.Epoch()
	st.Close()

	// Flip a byte inside the new snapshot: recovery must reject it. With
	// epoch 1 already cleaned up there is no older snapshot, but the
	// checkpoint's own log is empty, so state must still come back — via
	// the empty-catalog path it must NOT (data loss); assert it errors or
	// recovers fully. Corrupt-newest with an older fallback is the
	// interesting case, so rebuild that layout by hand.
	img := fs.CrashImage()
	snap2 := img.files[snapName(epoch2)].data
	mut := append([]byte(nil), snap2...)
	mut[len(mut)/2] ^= 1
	img.files[snapName(epoch2)] = &memFile{data: mut, synced: len(mut)}

	// Provide an older complete line: epoch 1's snapshot (empty catalog)
	// plus a log holding the commit.
	old := NewMemFS()
	ost, ocat, _, err := Open(old, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(ocat, put)
	if err := ost.Append(put); err != nil {
		t.Fatal(err)
	}
	ost.Close()
	oimg := old.CrashImage()
	img.files[snapName(1)] = oimg.files[snapName(1)]
	img.files[walName(1)] = oimg.files[walName(1)]

	st2, cat2, info, err := Open(img, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if info.SnapshotEpoch != 1 {
		t.Fatalf("recovered from snapshot %d, want fallback to 1", info.SnapshotEpoch)
	}
	if got := dumpCatalog(cat2); got != want {
		t.Fatalf("fallback state differs:\n--- want\n%s--- got\n%s", want, got)
	}
}

func TestAppendFailureBlocksUntilCheckpoint(t *testing.T) {
	fs := NewMemFS()
	st, cat, _, err := Open(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	put := []storage.Effect{{Kind: storage.EffPutTable, Name: "t", Cols: []storage.EffectColumn{{Name: "x", Base: "INTEGER"}}}}
	applyAll(cat, put)

	fs.SetFault(1, FaultFail)
	if err := st.Append(put); err == nil {
		t.Fatal("append under injected fault succeeded")
	}
	// MemFS considers the process dead after a fault; for the failed-log
	// gate we only need the store's own state, on a fresh fs.
	fs2 := NewMemFS()
	st2, cat2, _, err := Open(fs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	applyAll(cat2, put)
	fs2.SetFault(2, FaultFail) // write passes, fsync fails
	if err := st2.Append(put); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if err := st2.Append(put); err == nil {
		t.Fatal("append after failed log accepted without checkpoint")
	}
}

func TestMemFSFaultModes(t *testing.T) {
	// FaultFail: unsynced bytes are lost, synced survive (the dirent
	// needs a SyncDir of its own — see TestMemFSNamespaceDurability).
	fs := NewMemFS()
	f, _ := fs.Create("a")
	fs.SyncDir()
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("volatile"))
	fs.SetFault(1, FaultFail)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync fault: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed after FaultFail")
	}
	if _, err := fs.Open("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: %v", err)
	}
	img := fs.CrashImage()
	g, _ := img.Open("a")
	got, _ := io.ReadAll(g)
	if string(got) != "durable" {
		t.Fatalf("FaultFail image = %q, want %q", got, "durable")
	}

	// FaultTorn: the torn write's prefix survives the crash.
	fs2 := NewMemFS()
	f2, _ := fs2.Create("b")
	f2.Write([]byte("base"))
	f2.Sync()
	fs2.SetFault(1, FaultTorn)
	if _, err := f2.Write([]byte("12345678")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: %v", err)
	}
	img2 := fs2.CrashImage()
	g2, _ := img2.Open("b")
	got2, _ := io.ReadAll(g2)
	if string(got2) != "base1234" {
		t.Fatalf("FaultTorn image = %q, want %q", got2, "base1234")
	}

	// FaultShortRead: a read returns a short count and an error.
	fs3 := NewMemFS()
	f3, _ := fs3.Create("c")
	f3.Write([]byte("0123456789"))
	f3.Sync()
	r3, _ := fs3.Open("c")
	fs3.SetFault(1, FaultShortRead)
	buf := make([]byte, 10)
	n, err := r3.Read(buf)
	if !errors.Is(err, ErrInjected) || n >= 10 {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
}

// TestMemFSNamespaceDurability pins the namespace model: directory
// entries reach the crash image only through SyncDir. File fsync alone
// does not persist a create, and renames/removals after the last
// SyncDir revert — exactly the crash behaviour that makes a missing
// directory sync in the store a test failure instead of silent data
// loss.
func TestMemFSNamespaceDurability(t *testing.T) {
	// A created, fsynced file vanishes if its dirent was never synced.
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Write([]byte("payload"))
	f.Sync()
	fs.SetFault(1, FaultFail)
	fs.SyncDir() // the dirent sync itself fails -> nothing durable
	if names, _ := fs.CrashImage().List(); len(names) != 0 {
		t.Fatalf("unsynced create survived the crash: %v", names)
	}

	// A rename after the last SyncDir reverts to the old name, with the
	// file's synced content.
	fs2 := NewMemFS()
	f2, _ := fs2.Create("old")
	f2.Write([]byte("content"))
	f2.Sync()
	fs2.SyncDir()
	fs2.Rename("old", "new")
	fs2.SetFault(1, FaultFail)
	f2.Sync()
	img2 := fs2.CrashImage()
	if names, _ := img2.List(); fmt.Sprintf("%v", names) != "[old]" {
		t.Fatalf("unsynced rename survived the crash: %v", names)
	}
	g, _ := img2.Open("old")
	if got, _ := io.ReadAll(g); string(got) != "content" {
		t.Fatalf("reverted file content = %q, want %q", got, "content")
	}

	// A removal after the last SyncDir resurrects the file.
	fs3 := NewMemFS()
	f3, _ := fs3.Create("keep")
	f3.Write([]byte("x"))
	f3.Sync()
	fs3.SyncDir()
	fs3.Remove("keep")
	fs3.SetFault(1, FaultFail)
	fs3.List()
	if names, _ := fs3.CrashImage().List(); fmt.Sprintf("%v", names) != "[keep]" {
		t.Fatalf("unsynced removal survived the crash: %v", names)
	}

	// Under the torn-write model the page cache flushes: the unsynced
	// namespace survives along with the torn data.
	fs4 := NewMemFS()
	f4, _ := fs4.Create("t")
	fs4.SetFault(1, FaultTorn)
	f4.Write([]byte("12345678"))
	if names, _ := fs4.CrashImage().List(); fmt.Sprintf("%v", names) != "[t]" {
		t.Fatalf("torn crash dropped the namespace: %v", names)
	}
}

// TestCheckpointTransientFailureLosesNothing is the regression for the
// failed-checkpoint hole: a TRANSIENT I/O failure at any single
// operation of a checkpoint (the filesystem keeps working — no crash)
// must never lose an acknowledged commit. Once the snapshot rename may
// have published the new epoch, recovery prefers that snapshot and
// never replays the old epoch's log, so the store must poison itself
// (Append refuses until a checkpoint completes) instead of
// acknowledging commits into a log no recovery will read. Before the
// rename the old epoch is still the recovery line and appends may
// continue. The test does not hardcode which ops fall on which side: it
// asserts the observable contract — every commit Append acknowledged,
// on either path, survives reopen.
func TestCheckpointTransientFailureLosesNothing(t *testing.T) {
	put := []storage.Effect{{Kind: storage.EffPutTable, Name: "t", Cols: []storage.EffectColumn{{Name: "x", Base: "INTEGER"}}}}
	ins := []storage.Effect{{Kind: storage.EffInsert, Name: "t", Row: []types.Value{types.NewInt(1)}}}

	// Count a clean checkpoint's I/O window with a probe run.
	probe := NewMemFS()
	pst, pcat, _, err := Open(probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(pcat, put)
	if err := pst.Append(put); err != nil {
		t.Fatal(err)
	}
	preOps := probe.Ops()
	if err := pst.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptOps := probe.Ops() - preOps
	pst.Close()

	poisoned, open := 0, 0
	for n := 1; n <= ckptOps; n++ {
		fs := NewMemFS()
		st, cat, _, err := Open(fs, nil)
		if err != nil {
			t.Fatal(err)
		}
		applyAll(cat, put)
		if err := st.Append(put); err != nil {
			t.Fatal(err)
		}
		fs.SetFault(n, FaultErr) // nth op of the checkpoint window
		cerr := st.Checkpoint()

		if aerr := st.Append(ins); aerr != nil {
			// Poisoned: only a failed checkpoint may gate appends, and a
			// clean checkpoint must clear the gate.
			poisoned++
			if cerr == nil {
				t.Fatalf("op %d: append refused after a successful checkpoint: %v", n, aerr)
			}
			if err := st.Checkpoint(); err != nil {
				t.Fatalf("op %d: checkpoint retry failed: %v", n, err)
			}
			if err := st.Append(ins); err != nil {
				t.Fatalf("op %d: append after checkpoint retry failed: %v", n, err)
			}
		} else {
			open++
		}
		applyAll(cat, ins)
		want := dumpCatalog(cat)
		st.Close()

		// Every acknowledged commit must survive reopen — this is exactly
		// what silently appending to a superseded epoch's log violates.
		st2, cat2, _, err := Open(fs.CrashImage(), nil)
		if err != nil {
			t.Fatalf("op %d: reopen failed: %v", n, err)
		}
		if got := dumpCatalog(cat2); got != want {
			t.Fatalf("op %d: acknowledged commit lost after transient checkpoint failure:\n--- want\n%s--- got\n%s", n, want, got)
		}
		st2.Close()
	}
	if poisoned == 0 {
		t.Fatal("no checkpoint fault ever poisoned the store; the gate is untested")
	}
	if open == 0 {
		t.Fatal("every checkpoint fault poisoned the store; the pre-rename path is untested")
	}
}

func TestCheckpointCleansOldEpochs(t *testing.T) {
	fs := NewMemFS()
	st, cat, _, err := Open(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	put := []storage.Effect{{Kind: storage.EffPutTable, Name: "t", Cols: []storage.EffectColumn{{Name: "x", Base: "INTEGER"}}}}
	applyAll(cat, put)
	st.Append(put)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	want := []string{snapName(st.Epoch()), walName(st.Epoch())}
	sort.Strings(want)
	if fmt.Sprintf("%v", names) != fmt.Sprintf("%v", want) {
		t.Fatalf("directory after checkpoint = %v, want %v", names, want)
	}
}
