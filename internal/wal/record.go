package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"taupsm/internal/stats"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// ErrCorrupt marks a structurally invalid record: bad checksum,
// impossible length, or a payload that doesn't decode. At the tail of a
// log it means a torn write and recovery truncates there; anywhere else
// it means real corruption.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record framing: u32 little-endian payload length, u32 CRC-32 (IEEE)
// of the payload, payload bytes. The first payload byte is a tag.
const (
	recHeader    = 'H' // log header: magic, format version, epoch
	recCommit    = 'C' // one committed statement: a batch of effects
	recSnapHdr   = 'S' // snapshot header: magic, format version, epoch
	recSnapRows  = 'R' // snapshot row chunk for one table
	recSnapStats = 'T' // snapshot statistics: non-derivable registry state
	recSnapEnd   = 'Z' // snapshot end marker: the snapshot is complete
)

const (
	logMagic  = "taupsmwal1"
	snapMagic = "taupsmsnap1"

	// maxRecord bounds a record payload; anything larger is corruption
	// (and keeps fuzzed inputs from allocating absurd buffers).
	maxRecord = 1 << 28
)

// writeRecord frames and writes one record as a single Write call,
// returning the bytes written.
func writeRecord(w io.Writer, payload []byte) (int, error) {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	n, err := w.Write(buf)
	return n, err
}

// readRecord reads one framed record. io.EOF means a clean end;
// io.ErrUnexpectedEOF or ErrCorrupt mean a torn or damaged tail; any
// other error is an I/O failure that must not be mistaken for
// truncation.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// io.EOF here is a clean end; ErrUnexpectedEOF a torn header.
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecord {
		return nil, ErrCorrupt
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			// The header promised n payload bytes; ending before any of
			// them is as torn as ending in their middle.
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// tornTail reports whether a read error means "the log simply ends
// here" — clean EOF mid-record or a checksum mismatch — as opposed to
// an I/O failure.
func tornTail(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt)
}

// ---------- payload encoding ----------

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putVarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

// decoder consumes a payload with bounds checking; fuzzed inputs must
// never panic, only error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) done() bool { return d.err != nil }

// encodeValue appends one scalar value. Table-valued results never live
// in stored rows; hitting one is a caller bug surfaced as an error at
// encodeEffect level.
func encodeValue(b *bytes.Buffer, v types.Value) error {
	switch v.Kind {
	case types.KindNull, types.KindInt, types.KindBool, types.KindDate:
		b.WriteByte(byte(v.Kind))
		if v.Kind != types.KindNull {
			putVarint(b, v.I)
		}
	case types.KindFloat:
		b.WriteByte(byte(v.Kind))
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		b.Write(tmp[:])
	case types.KindString:
		b.WriteByte(byte(v.Kind))
		putString(b, v.S)
	default:
		return fmt.Errorf("wal: cannot encode %s value", v.Kind)
	}
	return nil
}

func (d *decoder) value() types.Value {
	switch k := types.Kind(d.byte()); k {
	case types.KindNull:
		return types.Null
	case types.KindInt, types.KindBool, types.KindDate:
		return types.Value{Kind: k, I: d.varint()}
	case types.KindFloat:
		if d.err != nil || len(d.buf)-d.off < 8 {
			d.fail()
			return types.Null
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
		return types.NewFloat(f)
	case types.KindString:
		return types.NewString(d.string())
	default:
		d.fail()
		return types.Null
	}
}

func encodeRow(b *bytes.Buffer, row []types.Value) error {
	putUvarint(b, uint64(len(row)))
	for _, v := range row {
		if err := encodeValue(b, v); err != nil {
			return err
		}
	}
	return nil
}

func (d *decoder) row() []types.Value {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		// Each value takes at least one byte, so a count larger than the
		// remaining payload is corrupt — reject before allocating.
		d.fail()
		return nil
	}
	row := make([]types.Value, 0, n)
	for i := uint64(0); i < n && !d.done(); i++ {
		row = append(row, d.value())
	}
	return row
}

// encodeEffect appends one effect.
func encodeEffect(b *bytes.Buffer, e storage.Effect) error {
	b.WriteByte(byte(e.Kind))
	putString(b, e.Name)
	switch e.Kind {
	case storage.EffInsert:
		return encodeRow(b, e.Row)
	case storage.EffUpdate:
		putUvarint(b, uint64(e.Index))
		return encodeRow(b, e.Row)
	case storage.EffDelete:
		putUvarint(b, uint64(e.Index))
	case storage.EffPutTable:
		flags := byte(0)
		if e.ValidTime {
			flags |= 1
		}
		if e.TransactionTime {
			flags |= 2
		}
		b.WriteByte(flags)
		putUvarint(b, uint64(len(e.Cols)))
		for _, c := range e.Cols {
			putString(b, c.Name)
			putString(b, c.Base)
			putVarint(b, int64(c.Length))
			putVarint(b, int64(c.Scale))
		}
	case storage.EffPutView, storage.EffPutRoutine:
		putString(b, e.SQL)
	case storage.EffDropTable, storage.EffDropView, storage.EffDropRoutine:
	default:
		return fmt.Errorf("wal: cannot encode effect kind %d", e.Kind)
	}
	return nil
}

func (d *decoder) effect() storage.Effect {
	e := storage.Effect{Kind: storage.EffectKind(d.byte())}
	e.Name = d.string()
	switch e.Kind {
	case storage.EffInsert:
		e.Row = d.row()
	case storage.EffUpdate:
		e.Index = uvint(d.uvarint())
		e.Row = d.row()
	case storage.EffDelete:
		e.Index = uvint(d.uvarint())
	case storage.EffPutTable:
		flags := d.byte()
		e.ValidTime = flags&1 != 0
		e.TransactionTime = flags&2 != 0
		n := d.uvarint()
		if d.err != nil || n > uint64(len(d.buf)-d.off) {
			d.fail()
			return e
		}
		for i := uint64(0); i < n && !d.done(); i++ {
			e.Cols = append(e.Cols, storage.EffectColumn{
				Name:   d.string(),
				Base:   d.string(),
				Length: int(d.varint()),
				Scale:  int(d.varint()),
			})
		}
	case storage.EffPutView, storage.EffPutRoutine:
		e.SQL = d.string()
	case storage.EffDropTable, storage.EffDropView, storage.EffDropRoutine:
	default:
		d.fail()
	}
	return e
}

// encodeCommit renders one committed statement's effect batch as a
// commit-record payload.
func encodeCommit(effects []storage.Effect) ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte(recCommit)
	putUvarint(&b, uint64(len(effects)))
	for _, e := range effects {
		if err := encodeEffect(&b, e); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// DecodeCommit parses a commit-record payload back into its effects.
// It is the fuzzing surface of the log format: arbitrary inputs must
// yield effects or an error, never a panic.
func DecodeCommit(payload []byte) ([]storage.Effect, error) {
	d := &decoder{buf: payload}
	if d.byte() != recCommit {
		return nil, ErrCorrupt
	}
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		return nil, ErrCorrupt
	}
	out := make([]storage.Effect, 0, n)
	for i := uint64(0); i < n; i++ {
		e := d.effect()
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, e)
	}
	return out, nil
}

// encodeStats renders the statistics registry's persistent state —
// the non-derivable part only: DML counters and ANALYZE results. The
// distribution itself is recomputed from the recovered rows on demand.
func encodeStats(ps []stats.TablePersist) []byte {
	var b bytes.Buffer
	b.WriteByte(recSnapStats)
	putUvarint(&b, uint64(len(ps)))
	for _, p := range ps {
		putString(&b, p.Name)
		putVarint(&b, p.Inserts)
		putVarint(&b, p.Updates)
		putVarint(&b, p.Deletes)
		flags := byte(0)
		if p.Analyzed {
			flags = 1
		}
		b.WriteByte(flags)
		putVarint(&b, p.AnalyzedRows)
		putVarint(&b, p.AnalyzedPeriods)
		putVarint(&b, p.MaxOverlap)
		putUvarint(&b, uint64(len(p.OverlapHist)))
		for _, v := range p.OverlapHist {
			putVarint(&b, v)
		}
	}
	return b.Bytes()
}

// DecodeStats parses a snapshot-statistics payload. Like DecodeCommit
// it must survive arbitrary inputs: a result or an error, never a
// panic.
func DecodeStats(payload []byte) ([]stats.TablePersist, error) {
	d := &decoder{buf: payload}
	if d.byte() != recSnapStats {
		return nil, ErrCorrupt
	}
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		// Each entry takes at least one byte; reject before allocating.
		return nil, ErrCorrupt
	}
	out := make([]stats.TablePersist, 0, n)
	for i := uint64(0); i < n; i++ {
		var p stats.TablePersist
		p.Name = d.string()
		p.Inserts = d.varint()
		p.Updates = d.varint()
		p.Deletes = d.varint()
		p.Analyzed = d.byte() != 0
		p.AnalyzedRows = d.varint()
		p.AnalyzedPeriods = d.varint()
		p.MaxOverlap = d.varint()
		m := d.uvarint()
		if d.err != nil || m > uint64(len(d.buf)-d.off) {
			return nil, ErrCorrupt
		}
		for j := uint64(0); j < m && !d.done(); j++ {
			p.OverlapHist = append(p.OverlapHist, d.varint())
		}
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, p)
	}
	return out, nil
}

// encodeHeader renders a log or snapshot header payload.
func encodeHeader(tag byte, magic string, epoch uint64) []byte {
	var b bytes.Buffer
	b.WriteByte(tag)
	putString(&b, magic)
	putUvarint(&b, epoch)
	return b.Bytes()
}

// decodeHeader validates a header payload and returns its epoch.
func decodeHeader(payload []byte, tag byte, magic string) (uint64, error) {
	d := &decoder{buf: payload}
	if d.byte() != tag || d.string() != magic {
		return 0, ErrCorrupt
	}
	epoch := d.uvarint()
	if d.err != nil {
		return 0, ErrCorrupt
	}
	return epoch, nil
}

// uvint converts a decoded uvarint to int, saturating rather than
// wrapping on hostile inputs.
func uvint(v uint64) int {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}
