package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"taupsm/internal/stats"
	"taupsm/internal/storage"
)

// snapRowChunk bounds the rows per snapshot record, so records stay
// small and a torn snapshot write is detected at the chunk it tore.
const snapRowChunk = 512

// snapTableEffect renders a table's schema as a put-table effect.
func snapTableEffect(t *storage.Table) storage.Effect {
	eff := storage.Effect{
		Kind:            storage.EffPutTable,
		Name:            t.Name,
		ValidTime:       t.ValidTime,
		TransactionTime: t.TransactionTime,
	}
	for _, c := range t.Schema.Cols {
		eff.Cols = append(eff.Cols, storage.EffectColumn{
			Name:   c.Name,
			Base:   c.Type.Base,
			Length: c.Type.Length,
			Scale:  c.Type.Scale,
		})
	}
	return eff
}

// writeSnapshot serializes the catalog into f as a point-in-time
// snapshot: a header record, then effect batches (schema + row chunks
// per table, then views, then routines), then the statistics record
// and an end marker whose presence proves the snapshot complete.
// Temporary tables are session state and are not persisted. Returns
// the bytes written; the caller syncs.
func writeSnapshot(f File, cat *storage.Catalog, ps []stats.TablePersist, epoch uint64) (int64, error) {
	var total int64
	emit := func(payload []byte) error {
		n, err := writeRecord(f, payload)
		total += int64(n)
		return err
	}
	emitEffects := func(effects []storage.Effect) error {
		payload, err := encodeCommit(effects)
		if err != nil {
			return err
		}
		return emit(payload)
	}
	if err := emit(encodeHeader(recSnapHdr, snapMagic, epoch)); err != nil {
		return total, err
	}

	tables := cat.TableNames()
	sort.Strings(tables)
	for _, name := range tables {
		t := cat.Table(name)
		if t == nil || t.Temporary {
			continue
		}
		if err := emitEffects([]storage.Effect{snapTableEffect(t)}); err != nil {
			return total, err
		}
		for lo := 0; lo < len(t.Rows); lo += snapRowChunk {
			hi := lo + snapRowChunk
			if hi > len(t.Rows) {
				hi = len(t.Rows)
			}
			batch := make([]storage.Effect, 0, hi-lo)
			for _, row := range t.Rows[lo:hi] {
				batch = append(batch, storage.Effect{Kind: storage.EffInsert, Name: t.Name, Row: row})
			}
			if err := emitEffects(batch); err != nil {
				return total, err
			}
		}
	}

	views := cat.ViewNames()
	sort.Strings(views)
	for _, name := range views {
		v := cat.View(name)
		if v == nil {
			continue
		}
		eff := storage.Effect{Kind: storage.EffPutView, Name: v.Name, SQL: renderViewSQL(v)}
		if err := emitEffects([]storage.Effect{eff}); err != nil {
			return total, err
		}
	}

	routines := cat.RoutineNames()
	sort.Strings(routines)
	for _, name := range routines {
		r := cat.Routine(name)
		if r == nil {
			continue
		}
		eff := storage.Effect{Kind: storage.EffPutRoutine, Name: r.Name, SQL: renderRoutineSQL(r)}
		if err := emitEffects([]storage.Effect{eff}); err != nil {
			return total, err
		}
	}

	if len(ps) > 0 {
		if err := emit(encodeStats(ps)); err != nil {
			return total, err
		}
	}

	if err := emit([]byte{recSnapEnd}); err != nil {
		return total, err
	}
	return total, nil
}

// readSnapshot rebuilds a catalog from a snapshot stream. A snapshot
// without its end marker, with a bad checksum, or with undecodable
// content returns an error wrapping ErrCorrupt (recovery then falls
// back to an older snapshot); I/O failures pass through untouched so
// they are never mistaken for a merely incomplete file.
func readSnapshot(f File) (*storage.Catalog, []stats.TablePersist, uint64, error) {
	payload, err := readRecord(f)
	if err != nil {
		return nil, nil, 0, snapReadErr(err)
	}
	epoch, err := decodeHeader(payload, recSnapHdr, snapMagic)
	if err != nil {
		return nil, nil, 0, corrupt(err)
	}
	cat := storage.NewCatalog()
	var ps []stats.TablePersist
	for {
		payload, err := readRecord(f)
		if err != nil {
			// Clean EOF without the end marker = incomplete snapshot.
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, nil, 0, snapReadErr(err)
		}
		if len(payload) == 1 && payload[0] == recSnapEnd {
			return cat, ps, epoch, nil
		}
		if len(payload) > 0 && payload[0] == recSnapStats {
			// Absent in snapshots older than the statistics subsystem;
			// they load with zeroed counters.
			ps, err = DecodeStats(payload)
			if err != nil {
				return nil, nil, 0, corrupt(err)
			}
			continue
		}
		effects, derr := DecodeCommit(payload)
		if derr != nil {
			return nil, nil, 0, corrupt(derr)
		}
		if aerr := applyAll(cat, effects); aerr != nil {
			return nil, nil, 0, corrupt(aerr)
		}
	}
}

// snapReadErr classifies a record-transport failure while reading a
// snapshot: a torn or checksum-bad record means an invalid snapshot
// (fold into ErrCorrupt so recovery falls back to an older one); real
// I/O errors pass through so they are never mistaken for truncation.
func snapReadErr(err error) error {
	if tornTail(err) {
		return corrupt(err)
	}
	return err
}

// corrupt wraps err in ErrCorrupt unless it already is.
func corrupt(err error) error {
	if errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}
