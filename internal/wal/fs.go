// Package wal implements the stratum's durability subsystem: a
// write-ahead log of committed statement effects, point-in-time
// snapshots of the storage catalog, and the recovery path that rebuilds
// an identical catalog image from snapshot + WAL tail on open.
//
// Everything reaches disk through the FS interface, so the crash and
// fault behaviour of the whole subsystem is testable: DirFS backs a
// real directory, MemFS models a kernel page cache with explicit sync
// watermarks and injectable faults (fail / torn write / short read at
// the Nth I/O operation).
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// FS is the filesystem the durability layer writes through. Pathnames
// are flat (no directories); implementations reject separators.
type FS interface {
	// Create opens a file for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// SyncDir makes completed renames and removals durable.
	SyncDir() error
}

// File is one open file. Writers append; readers consume from the
// start. Sync makes everything written so far durable.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// DirFS is the production FS: files in one OS directory.
type DirFS struct {
	root string
}

// NewDirFS creates (if necessary) and opens the directory at root.
func NewDirFS(root string) (*DirFS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create data directory: %w", err)
	}
	return &DirFS{root: root}, nil
}

// Root returns the backing directory path.
func (fs *DirFS) Root() string { return fs.root }

func (fs *DirFS) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
		return "", fmt.Errorf("wal: invalid file name %q", name)
	}
	return filepath.Join(fs.root, name), nil
}

// Create implements FS.
func (fs *DirFS) Create(name string) (File, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	return os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (fs *DirFS) Open(name string) (File, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

// Rename implements FS.
func (fs *DirFS) Rename(oldname, newname string) error {
	po, err := fs.path(oldname)
	if err != nil {
		return err
	}
	pn, err := fs.path(newname)
	if err != nil {
		return err
	}
	return os.Rename(po, pn)
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	p, err := fs.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// List implements FS.
func (fs *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements FS by fsyncing the directory. Filesystems that
// reject directory fsync outright (EINVAL/ENOTSUP) are tolerated —
// there is nothing more we can do there — but a genuine I/O error must
// surface: treating EIO as success would misread a durability failure
// as a durable write.
func (fs *DirFS) SyncDir() error {
	d, err := os.Open(fs.root)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

var _ FS = (*DirFS)(nil)
