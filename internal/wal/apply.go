package wal

import (
	"fmt"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/storage"
)

// Apply replays one effect against a catalog. Effects are structural
// and physical — no query re-evaluation — so replay is deterministic
// regardless of the clock or catalog contents at replay time. Semantic
// mismatches (a row effect against a missing table, an out-of-range
// index) mean the log does not describe this catalog; they error rather
// than panic so corrupt-but-checksum-valid input degrades cleanly.
func Apply(cat *storage.Catalog, e storage.Effect) error {
	switch e.Kind {
	case storage.EffInsert:
		t := cat.Table(e.Name)
		if t == nil {
			return fmt.Errorf("wal: insert into missing table %s", e.Name)
		}
		return t.Insert(e.Row)
	case storage.EffUpdate:
		t := cat.Table(e.Name)
		if t == nil {
			return fmt.Errorf("wal: update of missing table %s", e.Name)
		}
		if e.Index < 0 || e.Index >= len(t.Rows) || len(e.Row) != len(t.Schema.Cols) {
			return fmt.Errorf("wal: update of %s out of range", e.Name)
		}
		t.Rows[e.Index] = e.Row
		t.Bump()
		return nil
	case storage.EffDelete:
		t := cat.Table(e.Name)
		if t == nil {
			return fmt.Errorf("wal: delete from missing table %s", e.Name)
		}
		if e.Index < 0 || e.Index >= len(t.Rows) {
			return fmt.Errorf("wal: delete from %s out of range", e.Name)
		}
		t.Rows = append(t.Rows[:e.Index], t.Rows[e.Index+1:]...)
		t.Bump()
		return nil
	case storage.EffPutTable:
		cols := make([]storage.Column, 0, len(e.Cols))
		for _, c := range e.Cols {
			cols = append(cols, storage.Column{Name: c.Name, Type: sqlast.TypeName{
				Base: c.Base, Length: c.Length, Scale: c.Scale,
			}})
		}
		t := storage.NewTable(e.Name, storage.NewSchema(cols))
		t.ValidTime = e.ValidTime
		t.TransactionTime = e.TransactionTime
		cat.PutTable(t)
		return nil
	case storage.EffDropTable:
		cat.DropTable(e.Name)
		return nil
	case storage.EffPutView:
		stmt, err := sqlparser.ParseStatement(e.SQL)
		if err != nil {
			return fmt.Errorf("wal: view %s: %w", e.Name, err)
		}
		v, ok := stmt.(*sqlast.CreateViewStmt)
		if !ok {
			return fmt.Errorf("wal: view %s: definition is %T, not CREATE VIEW", e.Name, stmt)
		}
		cat.PutView(&storage.View{Name: v.Name, Cols: v.Cols, Query: v.Query, Mod: v.Mod})
		return nil
	case storage.EffDropView:
		cat.DropView(e.Name)
		return nil
	case storage.EffPutRoutine:
		stmt, err := sqlparser.ParseStatement(e.SQL)
		if err != nil {
			return fmt.Errorf("wal: routine %s: %w", e.Name, err)
		}
		switch s := stmt.(type) {
		case *sqlast.CreateFunctionStmt:
			cat.PutRoutine(&storage.Routine{Kind: storage.KindFunction, Name: s.Name, Fn: s})
		case *sqlast.CreateProcedureStmt:
			cat.PutRoutine(&storage.Routine{Kind: storage.KindProcedure, Name: s.Name, Proc: s})
		default:
			return fmt.Errorf("wal: routine %s: definition is %T, not CREATE FUNCTION/PROCEDURE", e.Name, stmt)
		}
		return nil
	case storage.EffDropRoutine:
		cat.DropRoutine(e.Name)
		return nil
	}
	return fmt.Errorf("wal: unknown effect kind %d", e.Kind)
}

// applyAll replays an effect batch in order.
func applyAll(cat *storage.Catalog, effects []storage.Effect) error {
	for _, e := range effects {
		if err := Apply(cat, e); err != nil {
			return err
		}
	}
	return nil
}

// renderViewSQL renders a stored view back to its CREATE VIEW source
// for snapshotting.
func renderViewSQL(v *storage.View) string {
	s := &sqlast.CreateViewStmt{Name: v.Name, Cols: v.Cols, Query: v.Query, Mod: v.Mod}
	return s.SQL()
}

// renderRoutineSQL renders a stored routine back to its definition.
func renderRoutineSQL(r *storage.Routine) string {
	if r.Kind == storage.KindFunction {
		return r.Fn.SQL()
	}
	return r.Proc.SQL()
}
