package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"taupsm/internal/obs"
	"taupsm/internal/stats"
	"taupsm/internal/storage"
)

// File layout: each checkpoint starts an epoch E holding one complete
// snapshot (snapshot-E.snap) and the log of statements committed since
// it (wal-E.log). A checkpoint writes snapshot-(E+1).tmp, syncs it,
// renames it into place, starts wal-(E+1), and only then deletes epoch
// E — so at every instant the directory holds at least one complete
// recovery line, and recovery simply picks the newest valid one.
const (
	snapPattern = "snapshot-%08d.snap"
	walPattern  = "wal-%08d.log"
	tmpPattern  = "snapshot-%08d.tmp"
)

func snapName(epoch uint64) string { return fmt.Sprintf(snapPattern, epoch) }
func walName(epoch uint64) string  { return fmt.Sprintf(walPattern, epoch) }
func tmpName(epoch uint64) string  { return fmt.Sprintf(tmpPattern, epoch) }

// RecoveryInfo describes what Open reconstructed.
type RecoveryInfo struct {
	// Epoch is the epoch the store now writes at (recovery always
	// checkpoints into a fresh epoch).
	Epoch uint64
	// SnapshotEpoch is the snapshot recovery loaded; 0 means none
	// (empty or brand-new directory).
	SnapshotEpoch uint64
	// Commits and Effects count the WAL tail replayed on top of the
	// snapshot.
	Commits int
	Effects int
	// TornTail reports that the log ended in a torn or corrupt record,
	// which recovery truncated (the expected signature of a crash
	// mid-append).
	TornTail bool
	// Duration is the wall time of recovery including the fresh
	// checkpoint.
	Duration time.Duration
}

// String renders the info for EXPLAIN and logs.
func (ri *RecoveryInfo) String() string {
	s := fmt.Sprintf("epoch %d (snapshot %d, %d commits, %d effects replayed",
		ri.Epoch, ri.SnapshotEpoch, ri.Commits, ri.Effects)
	if ri.TornTail {
		s += ", torn tail truncated"
	}
	return s + ")"
}

// Store is an open write-ahead log: Append durably commits one
// statement's effect batch, Checkpoint compacts the log into a fresh
// snapshot epoch, Close ends the session. A Store is safe for
// concurrent use; callers serialize writers at the statement level
// exactly as they do for the in-memory catalog.
type Store struct {
	fs    FS
	cat   *storage.Catalog
	stats *stats.Registry

	mu       sync.Mutex
	epoch    uint64
	wal      File
	walBytes int64
	failed   bool
	closed   bool

	m walMetrics
}

type walMetrics struct {
	appends    *obs.Counter
	bytes      *obs.Counter
	effects    *obs.Counter
	fsyncs     *obs.Counter
	snapshots  *obs.Counter
	tornTails  *obs.Counter
	fsyncNS    *obs.Histogram
	epoch      *obs.Gauge
	walBytes   *obs.Gauge
	snapBytes  *obs.Gauge
	recNS      *obs.Gauge
	recCommits *obs.Gauge
	recEffects *obs.Gauge
}

func newWalMetrics(m *obs.Metrics) walMetrics {
	return walMetrics{
		appends:    m.Counter("wal.appends_total"),
		bytes:      m.Counter("wal.append_bytes_total"),
		effects:    m.Counter("wal.effects_total"),
		fsyncs:     m.Counter("wal.fsyncs_total"),
		snapshots:  m.Counter("wal.snapshots_total"),
		tornTails:  m.Counter("wal.torn_tails_total"),
		fsyncNS:    m.Histogram("wal.fsync_ns"),
		epoch:      m.Gauge("wal.epoch"),
		walBytes:   m.Gauge("wal.bytes"),
		snapBytes:  m.Gauge("wal.snapshot_bytes"),
		recNS:      m.Gauge("wal.recovery_ns"),
		recCommits: m.Gauge("wal.recovery_commits"),
		recEffects: m.Gauge("wal.recovery_effects"),
	}
}

// Open recovers the newest valid snapshot plus its WAL tail from fs
// into a catalog, then checkpoints that catalog into a fresh epoch and
// returns the live store. A torn log tail (crash mid-append) is
// truncated; a torn snapshot (crash mid-checkpoint) falls back to the
// previous epoch; genuine I/O failures abort the open so transient
// faults are never misread as data loss. Metrics land in m (optional).
func Open(fs FS, m *obs.Metrics) (*Store, *storage.Catalog, *RecoveryInfo, error) {
	if m == nil {
		m = obs.NewMetrics()
	}
	st := &Store{fs: fs, stats: stats.NewRegistry(), m: newWalMetrics(m)}
	start := time.Now()

	names, err := fs.List()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: list: %w", err)
	}
	snaps, wals, maxEpoch := classify(names)

	info := &RecoveryInfo{}
	var cat *storage.Catalog
	for i := len(snaps) - 1; i >= 0 && cat == nil; i-- {
		epoch := snaps[i]
		f, ferr := fs.Open(snapName(epoch))
		if ferr != nil {
			return nil, nil, nil, fmt.Errorf("wal: open snapshot: %w", ferr)
		}
		c, ps, e, rerr := readSnapshot(f)
		f.Close()
		switch {
		case rerr == nil && e == epoch:
			cat = c
			st.stats.Install(ps)
			info.SnapshotEpoch = epoch
		case rerr == nil || errors.Is(rerr, ErrCorrupt):
			// Invalid or mislabeled snapshot: fall back to an older one.
		default:
			return nil, nil, nil, fmt.Errorf("wal: read snapshot %d: %w", epoch, rerr)
		}
	}
	if cat == nil {
		cat = storage.NewCatalog()
	}

	if wals[info.SnapshotEpoch] {
		if err := st.replay(cat, info); err != nil {
			return nil, nil, nil, err
		}
	}
	if info.TornTail {
		st.m.tornTails.Inc()
	}

	if err := st.checkpointLocked(cat, maxEpoch+1); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: recovery checkpoint: %w", err)
	}
	st.cat = cat
	info.Epoch = st.epoch
	info.Duration = time.Since(start)
	st.m.recNS.Set(info.Duration.Nanoseconds())
	st.m.recCommits.Set(int64(info.Commits))
	st.m.recEffects.Set(int64(info.Effects))
	return st, cat, info, nil
}

// classify parses the directory listing into snapshot epochs
// (ascending), wal epochs, and the highest epoch mentioned anywhere.
func classify(names []string) (snaps []uint64, wals map[uint64]bool, maxEpoch uint64) {
	wals = map[uint64]bool{}
	for _, name := range names {
		var epoch uint64
		switch {
		case matchName(name, snapPattern, &epoch):
			snaps = append(snaps, epoch)
		case matchName(name, walPattern, &epoch):
			wals[epoch] = true
		case matchName(name, tmpPattern, &epoch):
		default:
			continue
		}
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return snaps, wals, maxEpoch
}

func matchName(name, pattern string, epoch *uint64) bool {
	var e uint64
	if n, err := fmt.Sscanf(name, pattern, &e); err != nil || n != 1 {
		return false
	}
	if fmt.Sprintf(pattern, e) != name {
		return false
	}
	*epoch = e
	return true
}

// replay applies the WAL tail of the recovered snapshot's epoch onto
// cat, truncating at the first torn or corrupt record.
func (st *Store) replay(cat *storage.Catalog, info *RecoveryInfo) error {
	f, err := st.fs.Open(walName(info.SnapshotEpoch))
	if err != nil {
		return fmt.Errorf("wal: open log: %w", err)
	}
	defer f.Close()

	payload, err := readRecord(f)
	switch {
	case err == nil:
		if epoch, herr := decodeHeader(payload, recHeader, logMagic); herr != nil || epoch != info.SnapshotEpoch {
			info.TornTail = true
			return nil
		}
	case errors.Is(err, io.EOF):
		return nil // empty log: created but never written
	case tornTail(err):
		info.TornTail = true
		return nil
	default:
		return fmt.Errorf("wal: read log: %w", err)
	}

	for {
		payload, err := readRecord(f)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if tornTail(err) {
			info.TornTail = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: read log: %w", err)
		}
		effects, derr := DecodeCommit(payload)
		if derr != nil {
			info.TornTail = true
			return nil
		}
		if aerr := applyAll(cat, effects); aerr != nil {
			// A checksum-valid record that does not apply cannot be a
			// torn write; the log contradicts the snapshot.
			return fmt.Errorf("wal: replay: %w", aerr)
		}
		st.replayStatsDeltas(effects)
		info.Commits++
		info.Effects += len(effects)
	}
}

// replayStatsDeltas folds one replayed commit's DML counts into the
// statistics registry, continuing each table's history past the
// persisted checkpoint. Row effects in a batch that also puts the
// table's schema are a table load (CREATE ... WITH DATA, ALTER ADD
// VALIDTIME), not user DML, and are not counted; a replayed drop
// discards the table's entry just as the live path does.
func (st *Store) replayStatsDeltas(effects []storage.Effect) {
	loaded := map[string]bool{}
	for _, e := range effects {
		switch e.Kind {
		case storage.EffPutTable:
			loaded[e.Name] = true
		case storage.EffDropTable:
			st.stats.Drop(e.Name)
		}
	}
	for _, e := range effects {
		if loaded[e.Name] {
			continue
		}
		switch e.Kind {
		case storage.EffInsert:
			st.stats.AddReplayDelta(e.Name, 1, 0, 0)
		case storage.EffUpdate:
			st.stats.AddReplayDelta(e.Name, 0, 1, 0)
		case storage.EffDelete:
			st.stats.AddReplayDelta(e.Name, 0, 0, 1)
		}
	}
}

// AppendStats reports what one successful Append cost: the bytes the
// record added to the log and the duration of its fsync. The stratum
// feeds them into EXPLAIN ANALYZE and the slow-query log, per
// statement, without racing other sessions' metric deltas.
type AppendStats struct {
	Bytes int64
	Fsync time.Duration
}

// Append durably commits one statement's effect batch: one framed,
// checksummed record, written and fsynced before return. On any write
// or sync failure the log position is indeterminate, so the store
// refuses further appends until a checkpoint starts a fresh file; the
// caller rolls the statement back in memory, keeping memory and disk
// in agreement.
func (st *Store) Append(effects []storage.Effect) error {
	_, err := st.AppendTraced(effects, nil, obs.SpanContext{})
	return err
}

// AppendTraced is Append with per-call observability: it returns the
// commit's AppendStats and, when tr is non-nil, emits a "wal.fsync"
// span under parent covering the log sync.
func (st *Store) AppendTraced(effects []storage.Effect, tr obs.Tracer, parent obs.SpanContext) (AppendStats, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return AppendStats{}, errors.New("wal: store is closed")
	}
	if st.failed {
		return AppendStats{}, errors.New("wal: log write failed; checkpoint to resume")
	}
	payload, err := encodeCommit(effects)
	if err != nil {
		return AppendStats{}, err
	}
	n, err := writeRecord(st.wal, payload)
	if err != nil {
		st.failed = true
		return AppendStats{}, fmt.Errorf("wal: append: %w", err)
	}
	start := time.Now()
	serr := st.wal.Sync()
	fsyncDur := time.Since(start)
	st.m.fsyncNS.Record(fsyncDur)
	st.m.fsyncs.Inc()
	if tr != nil {
		tr.Span(obs.Span{Name: "wal.fsync", Start: start, Dur: fsyncDur,
			Trace: parent.Trace, ID: obs.NewSpanID(), Parent: parent.Span})
	}
	if serr != nil {
		st.failed = true
		return AppendStats{}, fmt.Errorf("wal: fsync: %w", serr)
	}
	st.walBytes += int64(n)
	st.m.appends.Inc()
	st.m.bytes.Add(int64(n))
	st.m.effects.Add(int64(len(effects)))
	st.m.walBytes.Set(st.walBytes)
	return AppendStats{Bytes: int64(n), Fsync: fsyncDur}, nil
}

// Checkpoint compacts the store: it snapshots the current catalog into
// a new epoch, starts an empty log, and deletes the old epoch's files.
// Recovery cost then restarts from zero. Also the way out of a failed
// log (see Append).
func (st *Store) Checkpoint() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errors.New("wal: store is closed")
	}
	return st.checkpointLocked(st.cat, st.epoch+1)
}

// checkpointLocked writes epoch's snapshot and fresh log, swaps them
// in, and cleans up older epochs. Crash ordering: the snapshot is
// complete and durable (tmp → sync → rename → dir sync) before the new
// log exists, the log and its directory entry are durable (create →
// sync → dir sync) before any commit lands in it, and both files exist
// before anything old is removed.
func (st *Store) checkpointLocked(cat *storage.Catalog, epoch uint64) error {
	tmp := tmpName(epoch)
	f, err := st.fs.Create(tmp)
	if err != nil {
		return err
	}
	nbytes, err := writeSnapshot(f, cat, st.stats.Persist(), epoch)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// From the rename on, the new snapshot may be durable; recovery then
	// prefers it and never replays the old epoch's log. Any failure past
	// this point therefore poisons the store (failed=true): appending to
	// the old log would acknowledge commits that the next Open silently
	// drops. Append refuses until a checkpoint completes and
	// re-establishes a consistent epoch.
	if err := st.fs.Rename(tmp, snapName(epoch)); err != nil {
		st.failed = true
		return err
	}
	if err := st.fs.SyncDir(); err != nil {
		st.failed = true
		return err
	}

	wf, err := st.fs.Create(walName(epoch))
	if err != nil {
		st.failed = true
		return err
	}
	hn, err := writeRecord(wf, encodeHeader(recHeader, logMagic, epoch))
	if err != nil {
		wf.Close()
		st.failed = true
		return err
	}
	if err := wf.Sync(); err != nil {
		wf.Close()
		st.failed = true
		return err
	}
	// The new log's directory entry must be durable before any commit is
	// acknowledged against it: a file fsync does not persist the dirent,
	// and a crash that erased wal-(epoch) while keeping snapshot-(epoch)
	// would drop every acknowledged commit of the epoch.
	if err := st.fs.SyncDir(); err != nil {
		wf.Close()
		st.failed = true
		return err
	}

	if st.wal != nil {
		st.wal.Close()
	}
	st.wal = wf
	st.epoch = epoch
	st.walBytes = int64(hn)
	st.failed = false
	st.m.snapshots.Inc()
	st.m.snapBytes.Set(nbytes)
	st.m.epoch.Set(int64(epoch))
	st.m.walBytes.Set(st.walBytes)

	// Older epochs and stale temporaries are now garbage; removal is
	// best-effort (a failure here costs disk, not correctness).
	if names, lerr := st.fs.List(); lerr == nil {
		for _, name := range names {
			var e uint64
			switch {
			case matchName(name, snapPattern, &e), matchName(name, walPattern, &e):
				if e != epoch {
					_ = st.fs.Remove(name)
				}
			case matchName(name, tmpPattern, &e):
				_ = st.fs.Remove(name)
			}
		}
	}
	return nil
}

// Stats returns the statistics registry the store recovered and
// persists at each checkpoint. The engine adopts it as its live
// registry, so DML keeps it current between checkpoints.
func (st *Store) Stats() *stats.Registry { return st.stats }

// Epoch returns the current checkpoint epoch.
func (st *Store) Epoch() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// Bytes returns the current log size in bytes (header included).
func (st *Store) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.walBytes
}

// Failed reports whether the store is poisoned: a checkpoint failed
// partway, so Append refuses every batch until a checkpoint succeeds.
// Health endpoints surface this state instead of a silent write-stall.
func (st *Store) Failed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failed
}

// Close ends the store session. Appended records are already durable
// (every Append fsyncs), so closing only releases the log file.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if st.wal != nil {
		return st.wal.Close()
	}
	return nil
}
