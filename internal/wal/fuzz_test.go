package wal

import (
	"testing"

	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// FuzzWALReplay feeds arbitrary bytes through the commit-record decoder
// and replays whatever decodes against a live catalog. The invariant is
// absence of panics: a WAL written by a crashed process can contain any
// byte sequence, and recovery must degrade to an error, never abort the
// process. Seeds cover every effect kind plus adversarial truncations.
func FuzzWALReplay(f *testing.F) {
	seed := func(effects []storage.Effect) {
		payload, err := encodeCommit(effects)
		if err != nil {
			f.Fatalf("seed: %v", err)
		}
		f.Add(payload)
		f.Add(payload[:len(payload)/2])
	}
	seed([]storage.Effect{
		{Kind: storage.EffPutTable, Name: "m", ValidTime: true, Cols: []storage.EffectColumn{
			{Name: "id", Base: "INTEGER"}, {Name: "w", Base: "DECIMAL", Length: 8, Scale: 2},
		}},
		{Kind: storage.EffInsert, Name: "m", Row: []types.Value{
			types.NewInt(1), types.NewString("x"), types.NewFloat(2.5), types.Null,
			types.NewDate(types.Forever), {Kind: types.KindBool, I: 1},
		}},
	})
	seed([]storage.Effect{
		{Kind: storage.EffUpdate, Name: "m", Index: 0, Row: []types.Value{types.NewInt(2)}},
		{Kind: storage.EffDelete, Name: "m", Index: 1},
		{Kind: storage.EffDropTable, Name: "m"},
	})
	seed([]storage.Effect{
		{Kind: storage.EffPutView, Name: "v", SQL: "CREATE VIEW v AS SELECT id FROM m;"},
		{Kind: storage.EffPutRoutine, Name: "fn", SQL: "CREATE FUNCTION fn (x INTEGER) RETURNS INTEGER RETURN x + 1;"},
		{Kind: storage.EffDropView, Name: "v"},
		{Kind: storage.EffDropRoutine, Name: "fn"},
	})
	f.Add([]byte{recCommit})
	f.Add([]byte{recCommit, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(encodeHeader(recHeader, logMagic, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		effects, err := DecodeCommit(data)
		if err != nil {
			return
		}
		cat := storage.NewCatalog()
		seedCat := []storage.Effect{
			{Kind: storage.EffPutTable, Name: "m", Cols: []storage.EffectColumn{{Name: "id", Base: "INTEGER"}}},
			{Kind: storage.EffInsert, Name: "m", Row: []types.Value{types.NewInt(1)}},
		}
		if err := applyAll(cat, seedCat); err != nil {
			t.Fatalf("seed catalog: %v", err)
		}
		// Checksum-valid garbage may still be semantic nonsense; replay
		// must reject it with an error, not a panic.
		_ = applyAll(cat, effects)
	})
}
