package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Fault and crash sentinels.
var (
	// ErrInjected is returned by the I/O operation a fault was armed on.
	ErrInjected = errors.New("wal: injected fault")
	// ErrCrashed is returned by every operation after a fault fired:
	// the process is considered dead, only CrashImage remains.
	ErrCrashed = errors.New("wal: filesystem crashed")
)

// FaultMode selects what happens at the armed I/O operation.
type FaultMode int

// Fault modes.
const (
	// FaultNone disables injection.
	FaultNone FaultMode = iota
	// FaultFail makes the operation fail outright; the crash image
	// keeps only synced data (maximum loss — the page cache is gone).
	FaultFail
	// FaultTorn makes a write persist only a prefix of its buffer
	// before the crash; the torn bytes survive in the crash image
	// (the page cache made it to disk half-way).
	FaultTorn
	// FaultShortRead makes a read return fewer bytes than asked and
	// then fail; models a transient I/O error during recovery.
	FaultShortRead
	// FaultErr makes the operation fail with ErrInjected but leaves the
	// filesystem alive: a transient I/O error, not a crash. The store
	// must keep its durability invariants while continuing to run.
	FaultErr
)

// MemFS is an in-memory FS with explicit durability semantics for crash
// testing. Every byte written lands in a file's data; Sync advances the
// file's durable watermark. The namespace is cached the same way: a
// created, renamed, or removed directory entry becomes durable only at
// the next SyncDir (a file fsync does NOT persist its dirent, matching
// POSIX). A crash (injected fault) freezes the filesystem: subsequent
// operations fail with ErrCrashed, and CrashImage yields what a real
// disk would hold — synced bytes under the last-synced namespace
// always, unsynced bytes and dirents only when the fault mode says the
// page cache made it.
//
// Faults are armed with SetFault(n, mode): the nth I/O operation
// (1-based, counted across Create/Open/Read/Write/Sync/Rename/Remove/
// List/SyncDir) misbehaves per mode.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	durable map[string]*memFile // namespace as of the last SyncDir
	ops     int
	faultAt int
	mode    FaultMode
	crashed bool
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem (the empty namespace
// is durable — a fresh directory survives a crash as empty).
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, durable: map[string]*memFile{}}
}

// snapshotNamespace copies the current namespace into the durable view.
// Callers hold fs.mu.
func (fs *MemFS) snapshotNamespace() {
	fs.durable = make(map[string]*memFile, len(fs.files))
	for name, f := range fs.files {
		fs.durable[name] = f
	}
}

// SetFault arms a fault at the nth upcoming I/O operation (1-based);
// n = 0 disarms.
func (fs *MemFS) SetFault(n int, mode FaultMode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faultAt = fs.ops + n
	if n == 0 {
		fs.faultAt = 0
	}
	fs.mode = mode
}

// Ops returns the number of I/O operations performed so far.
func (fs *MemFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether an injected fault has fired.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// CrashImage returns a fresh, fault-free MemFS holding what a disk
// would contain after the crash (or after a clean shutdown): for a
// crashed FS under FaultFail, only synced bytes under the namespace of
// the last SyncDir (unsynced creates vanish, unsynced renames and
// removals revert); under FaultTorn, the torn write's prefix and the
// current namespace survive too (they were frozen at crash time). The
// receiver is left untouched.
func (fs *MemFS) CrashImage() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	src := fs.files
	if fs.crashed {
		src = fs.durable
	}
	img := NewMemFS()
	for name, f := range src {
		n := len(f.data)
		if fs.crashed {
			n = f.synced
		}
		nf := &memFile{data: append([]byte(nil), f.data[:n]...), synced: n}
		img.files[name] = nf
		img.durable[name] = nf
	}
	return img
}

// ReadFile returns a copy of a file's full contents. It is harness
// introspection, not modeled I/O: no operation is counted, no fault
// fires.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: readfile %s: file does not exist", name)
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces a file's contents, fully synced — harness surgery
// for crash images (e.g. truncating a log at an arbitrary byte), not
// modeled I/O.
func (fs *MemFS) WriteFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...), synced: len(data)}
	fs.files[name] = f
	fs.durable[name] = f
}

// step counts one operation and fires an armed FaultFail (crash) or
// FaultErr (transient failure); FaultTorn and FaultShortRead are
// handled by Write/Read themselves.
func (fs *MemFS) step() (hit bool, err error) {
	if fs.crashed {
		return false, ErrCrashed
	}
	fs.ops++
	if fs.faultAt != 0 && fs.ops == fs.faultAt {
		switch fs.mode {
		case FaultFail:
			fs.crash(false)
			return true, ErrInjected
		case FaultErr:
			return true, ErrInjected
		}
		return true, nil
	}
	return false, nil
}

// crash freezes the filesystem. keepUnsynced preserves the page cache
// — data tails AND the current namespace (torn-write model); otherwise
// unsynced tails and dirents are dropped, so the synced watermark under
// the last-synced namespace is what CrashImage sees.
func (fs *MemFS) crash(keepUnsynced bool) {
	fs.crashed = true
	if keepUnsynced {
		for _, f := range fs.files {
			f.synced = len(f.data)
		}
		fs.snapshotNamespace()
	}
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return nil, err
	}
	f := &memFile{}
	fs.files[name] = f
	return &memHandle{fs: fs, name: name, f: f}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return nil, err
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: file does not exist", name)
	}
	return &memHandle{fs: fs, name: name, f: f}, nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return err
	}
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("wal: rename %s: file does not exist", oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: file does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements FS: the current namespace — every create, rename,
// and removal so far — becomes the one a crash image keeps.
func (fs *MemFS) SyncDir() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return err
	}
	fs.snapshotNamespace()
	return nil
}

// memHandle is an open MemFS file: writes append, reads consume from
// the handle's own offset.
type memHandle struct {
	fs   *MemFS
	name string
	f    *memFile
	off  int
}

// Write implements File.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	hit, err := h.fs.step()
	if err != nil {
		return 0, err
	}
	if hit && h.fs.mode == FaultTorn {
		k := len(p) / 2
		h.f.data = append(h.f.data, p[:k]...)
		h.fs.crash(true)
		return k, ErrInjected
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Read implements File.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	hit, err := h.fs.step()
	if err != nil {
		return 0, err
	}
	avail := len(h.f.data) - h.off
	if avail <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > avail {
		n = avail
	}
	if hit && h.fs.mode == FaultShortRead {
		n /= 2
		copy(p, h.f.data[h.off:h.off+n])
		h.off += n
		h.fs.crash(false)
		return n, ErrInjected
	}
	copy(p, h.f.data[h.off:h.off+n])
	h.off += n
	return n, nil
}

// Sync implements File: everything written so far becomes durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if _, err := h.fs.step(); err != nil {
		return err
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements File. Closing is not an I/O op (it cannot fault) so
// harness op counts track only the operations that can lose data.
func (h *memHandle) Close() error { return nil }

var _ FS = (*MemFS)(nil)
