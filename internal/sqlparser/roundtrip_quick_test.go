package sqlparser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// Property-based printer/parser round-trip: generate random ASTs,
// print them, parse the print, and require the reparse to print
// identically. This pins the printer and parser to each other over a
// far larger space than the hand-written cases.

type astGen struct {
	rng   *rand.Rand
	depth int
}

func (g *astGen) ident() string {
	names := []string{"a", "b", "c", "col1", "price", "title", "begin_time", "end_time", "item_id"}
	return names[g.rng.Intn(len(names))]
}

func (g *astGen) table() string {
	names := []string{"t", "u", "item", "author", "cp"}
	return names[g.rng.Intn(len(names))]
}

func (g *astGen) literal() sqlast.Expr {
	switch g.rng.Intn(5) {
	case 0:
		return &sqlast.Literal{Val: types.NewInt(g.rng.Int63n(1000))}
	case 1:
		return &sqlast.Literal{Val: types.NewFloat(float64(g.rng.Intn(100)) + 0.5)}
	case 2:
		return &sqlast.Literal{Val: types.NewString("s")}
	case 3:
		return &sqlast.Literal{Val: types.NewDate(types.MustDate(2010, 1+g.rng.Intn(12), 1+g.rng.Intn(28)))}
	default:
		return &sqlast.Literal{Val: types.Null}
	}
}

func (g *astGen) expr() sqlast.Expr {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 4 {
		return g.literal()
	}
	switch g.rng.Intn(12) {
	case 0, 1:
		return g.literal()
	case 2:
		return &sqlast.ColumnRef{Column: g.ident()}
	case 3:
		return &sqlast.ColumnRef{Table: g.table(), Column: g.ident()}
	case 4:
		ops := []string{"+", "-", "*", "/", "||"}
		return &sqlast.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], L: g.expr(), R: g.expr()}
	case 5:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return &sqlast.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], L: g.expr(), R: g.expr()}
	case 6:
		return &sqlast.BinaryExpr{Op: "AND", L: g.predicate(), R: g.predicate()}
	case 7:
		return &sqlast.IsNullExpr{X: g.expr(), Not: g.rng.Intn(2) == 0}
	case 8:
		return &sqlast.BetweenExpr{X: g.expr(), Lo: g.expr(), Hi: g.expr(), Not: g.rng.Intn(2) == 0}
	case 9:
		n := 1 + g.rng.Intn(3)
		in := &sqlast.InExpr{X: g.expr(), Not: g.rng.Intn(2) == 0}
		for i := 0; i < n; i++ {
			in.List = append(in.List, g.literal())
		}
		return in
	case 10:
		c := &sqlast.CaseExpr{}
		for i := 0; i <= g.rng.Intn(2); i++ {
			c.Whens = append(c.Whens, sqlast.WhenClause{When: g.predicate(), Then: g.expr()})
		}
		if g.rng.Intn(2) == 0 {
			c.Else = g.expr()
		}
		return c
	default:
		fc := &sqlast.FuncCall{Name: "f" + g.ident()}
		for i := 0; i < g.rng.Intn(3); i++ {
			fc.Args = append(fc.Args, g.expr())
		}
		return fc
	}
}

func (g *astGen) predicate() sqlast.Expr {
	return &sqlast.BinaryExpr{Op: "=", L: g.expr(), R: g.expr()}
}

func (g *astGen) selectStmt() *sqlast.SelectStmt {
	g.depth++
	defer func() { g.depth-- }()
	s := &sqlast.SelectStmt{Distinct: g.rng.Intn(4) == 0}
	for i := 0; i <= g.rng.Intn(3); i++ {
		it := sqlast.SelectItem{Expr: g.expr()}
		if g.rng.Intn(2) == 0 {
			it.Alias = "x" + g.ident()
		}
		s.Items = append(s.Items, it)
	}
	for i := 0; i <= g.rng.Intn(2); i++ {
		var ref sqlast.TableRef
		switch {
		case g.depth < 3 && g.rng.Intn(4) == 0:
			ref = &sqlast.DerivedTable{Query: g.selectStmt(), Alias: "d" + g.ident()}
		default:
			ref = &sqlast.BaseTable{Name: g.table(), Alias: "r" + g.ident()}
		}
		s.From = append(s.From, ref)
	}
	if g.rng.Intn(2) == 0 {
		s.Where = g.predicate()
	}
	if g.rng.Intn(4) == 0 {
		s.GroupBy = []sqlast.Expr{&sqlast.ColumnRef{Column: g.ident()}}
		s.Having = g.predicate()
	}
	if g.rng.Intn(3) == 0 {
		s.OrderBy = []sqlast.OrderItem{{Expr: &sqlast.ColumnRef{Column: g.ident()}, Desc: g.rng.Intn(2) == 0}}
	}
	return s
}

func TestQuickRoundTripExpressions(t *testing.T) {
	f := func(seed int64) bool {
		g := &astGen{rng: rand.New(rand.NewSource(seed))}
		e := g.expr()
		printed := e.SQL()
		re, err := ParseExpr(printed)
		if err != nil {
			t.Logf("seed %d: parse error on %q: %v", seed, printed, err)
			return false
		}
		again := re.SQL()
		if printed != again {
			t.Logf("seed %d: %q reprinted as %q", seed, printed, again)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripSelects(t *testing.T) {
	f := func(seed int64) bool {
		g := &astGen{rng: rand.New(rand.NewSource(seed))}
		s := g.selectStmt()
		printed := s.SQL()
		rs, err := ParseStatement(printed)
		if err != nil {
			t.Logf("seed %d: parse error on %q: %v", seed, printed, err)
			return false
		}
		again := rs.SQL()
		if printed != again {
			t.Logf("seed %d: %q reprinted as %q", seed, printed, again)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Clones must be deep: printing the clone after mutating the original
// must differ from the original's new print but match the original's
// old print.
func TestQuickCloneIsDeep(t *testing.T) {
	f := func(seed int64) bool {
		g := &astGen{rng: rand.New(rand.NewSource(seed))}
		s := g.selectStmt()
		before := s.SQL()
		c := sqlast.CloneStmt(s)
		// mutate every column ref in the original
		sqlast.MapExprs(s, func(e sqlast.Expr) sqlast.Expr {
			if cr, ok := e.(*sqlast.ColumnRef); ok {
				cr.Column = "mutated"
			}
			return e
		})
		return c.SQL() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
