package sqlparser

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// Expression grammar (descending precedence):
//
//	expr     := or
//	or       := and { OR and }
//	and      := not { AND not }
//	not      := NOT not | predicate
//	pred     := additive [ compareOp additive
//	                     | IS [NOT] NULL
//	                     | [NOT] BETWEEN additive AND additive
//	                     | [NOT] IN ( list | query )
//	                     | [NOT] LIKE additive ]
//	additive := multip { (+|-|'||') multip }
//	multip   := unary { (*|/) unary }
//	unary    := - unary | primary

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (sqlast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// comparison
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.isOp(op) {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &sqlast.BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	if p.acceptKw("IS") {
		not := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &sqlast.IsNullExpr{X: left, Not: not}, nil
	}
	not := false
	if p.isKw("NOT") && (isWordTok(p.peek(1), "BETWEEN") || isWordTok(p.peek(1), "IN") || isWordTok(p.peek(1), "LIKE")) {
		p.next()
		not = true
	}
	switch {
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKw("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &sqlast.InExpr{X: left, Not: not}
		if p.isKw("SELECT") || p.isKw("VALUES") || p.isOp("(") {
			q, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			in.Sub = q
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKw("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.LikeExpr{X: left, Pattern: pat, Not: not}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (sqlast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("+"):
			op = "+"
		case p.isOp("-"):
			op = "-"
		case p.isOp("||"):
			op = "||"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") {
		op := p.next().Text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*sqlast.Literal); ok {
			switch lit.Val.Kind {
			case types.KindInt:
				return &sqlast.Literal{Val: types.NewInt(-lit.Val.I)}, nil
			case types.KindFloat:
				return &sqlast.Literal{Val: types.NewFloat(-lit.Val.F)}, nil
			}
		}
		return &sqlast.UnaryExpr{Op: "-", X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

// zero-argument builtins recognized without parentheses.
var niladicFuncs = map[string]bool{
	"CURRENT_DATE": true, "CURRENT_TIME": true, "CURRENT_TIMESTAMP": true,
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.tok()
	switch {
	case t.Kind == sqlscan.Number:
		p.next()
		return &sqlast.Literal{Val: makeNumber(t.Text)}, nil
	case t.Kind == sqlscan.String:
		p.next()
		return &sqlast.Literal{Val: types.NewString(t.Text)}, nil
	case p.isKw("NULL"):
		p.next()
		return &sqlast.Literal{Val: types.Null}, nil
	case p.isKw("TRUE"):
		p.next()
		return &sqlast.Literal{Val: types.NewBool(true)}, nil
	case p.isKw("FALSE"):
		p.next()
		return &sqlast.Literal{Val: types.NewBool(false)}, nil
	case p.isKw("CASE"):
		return p.parseCaseExpr()
	case p.isKw("CAST"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.CastExpr{X: x, Type: ty}, nil
	case p.isKw("EXISTS"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.ExistsExpr{Sub: q}, nil
	case p.isOp("("):
		p.next()
		if p.isKw("SELECT") || p.isKw("VALUES") {
			q, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.SubqueryExpr{Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == sqlscan.Ident:
		// DATE 'yyyy-mm-dd' literal
		if strings.EqualFold(t.Text, "DATE") && p.peek(1).Kind == sqlscan.String {
			p.next()
			lit := p.next()
			d, err := types.ParseDate(lit.Text)
			if err != nil {
				return nil, &Error{Pos: lit.Pos, Msg: err.Error()}
			}
			return &sqlast.Literal{Val: types.NewDate(d)}, nil
		}
		name, _ := p.ident()
		upper := strings.ToUpper(name)
		if niladicFuncs[upper] {
			return &sqlast.FuncCall{Name: upper, Pos: t.Pos}, nil
		}
		// function call
		if p.isOp("(") {
			return p.parseFuncCall(name, t.Pos)
		}
		// qualified column t.c
		if p.isOp(".") {
			p.next()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &sqlast.ColumnRef{Table: name, Column: col, Pos: t.Pos}, nil
		}
		return &sqlast.ColumnRef{Column: name, Pos: t.Pos}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

func (p *parser) parseFuncCall(name string, pos sqlscan.Pos) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &sqlast.FuncCall{Name: name, Pos: pos}
	if p.isOp("*") {
		p.next()
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptOp(")") {
		return f, nil
	}
	if p.acceptKw("DISTINCT") {
		f.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCaseExpr() (sqlast.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &sqlast.CaseExpr{}
	if !p.isKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.WhenClause{When: w, Then: th})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN clause")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseType parses a SQL type name, including ROW(...) ARRAY
// collection types.
func (p *parser) parseType() (sqlast.TypeName, error) {
	t := p.tok()
	if t.Kind != sqlscan.Ident {
		return sqlast.TypeName{}, p.errf("expected type name, found %q", t.Text)
	}
	name := strings.ToUpper(t.Text)
	p.next()
	switch name {
	case "ROW":
		ty := sqlast.TypeName{Base: "ROW"}
		if err := p.expectOp("("); err != nil {
			return ty, err
		}
		for {
			fn, err := p.ident()
			if err != nil {
				return ty, err
			}
			ft, err := p.parseType()
			if err != nil {
				return ty, err
			}
			ty.Row = append(ty.Row, sqlast.ColumnDef{Name: fn, Type: ft})
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return ty, err
		}
		if p.acceptWord("ARRAY") {
			ty.Array = true
		}
		return ty, nil
	case "INTEGER", "INT", "SMALLINT", "BIGINT", "DATE", "BOOLEAN", "FLOAT", "DOUBLE", "REAL":
		if name == "DOUBLE" {
			p.acceptWord("PRECISION")
		}
		return sqlast.TypeName{Base: name}, nil
	case "CHAR", "CHARACTER", "VARCHAR", "DECIMAL", "NUMERIC":
		ty := sqlast.TypeName{Base: name}
		if name == "CHARACTER" && p.isWord("VARYING") {
			p.next()
			ty.Base = "VARCHAR"
		}
		if p.acceptOp("(") {
			n, err := p.number()
			if err != nil {
				return ty, err
			}
			ty.Length = n
			if p.acceptOp(",") {
				s, err := p.number()
				if err != nil {
					return ty, err
				}
				ty.Scale = s
			}
			if err := p.expectOp(")"); err != nil {
				return ty, err
			}
		}
		return ty, nil
	}
	return sqlast.TypeName{}, p.errf("unknown type name %q", t.Text)
}
