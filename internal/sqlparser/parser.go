// Package sqlparser is a recursive-descent parser for the SQL + PSM
// dialect taupsm implements: queries (joins, subqueries, aggregates,
// set operations), DML, DDL, stored routines with the full PSM control
// statement set, and the SQL/Temporal statement modifiers.
package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// Error is a parse error with a source position.
type Error struct {
	Pos sqlscan.Pos
	Msg string
}

// Error renders the position-prefixed message.
func (e *Error) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []sqlscan.Token
	i    int
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]sqlast.Stmt, error) {
	toks, err := sqlscan.ScanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []sqlast.Stmt
	for {
		for p.acceptOp(";") {
		}
		if p.tok().Kind == sqlscan.EOF {
			return out, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptOp(";") && p.tok().Kind != sqlscan.EOF {
			return nil, p.errf("expected ';' or end of input, found %q", p.tok().Text)
		}
	}
}

// ParseStatement parses exactly one statement.
func ParseStatement(src string) (sqlast.Stmt, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseExpr parses a standalone scalar expression (used by tests and
// the public API's helper surface).
func ParseExpr(src string) (sqlast.Expr, error) {
	toks, err := sqlscan.ScanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok().Kind != sqlscan.EOF {
		return nil, p.errf("unexpected trailing input %q", p.tok().Text)
	}
	return e, nil
}

// ---------- token helpers ----------

func (p *parser) tok() sqlscan.Token { return p.toks[p.i] }

func (p *parser) peek(n int) sqlscan.Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}

func (p *parser) next() sqlscan.Token {
	t := p.toks[p.i]
	if t.Kind != sqlscan.EOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.tok().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isKw reports whether the current token is the reserved keyword kw.
func (p *parser) isKw(kw string) bool {
	t := p.tok()
	return t.Kind == sqlscan.Keyword && t.Text == kw
}

// isWord reports whether the current token is kw, whether reserved or a
// plain identifier (case-insensitive) — used for contextual keywords.
func (p *parser) isWord(w string) bool {
	t := p.tok()
	return (t.Kind == sqlscan.Keyword || t.Kind == sqlscan.Ident) && strings.EqualFold(t.Text, w)
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptWord(w string) bool {
	if p.isWord(w) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", kw, p.tok().Text)
	}
	return nil
}

func (p *parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return p.errf("expected %s, found %q", w, p.tok().Text)
	}
	return nil
}

func (p *parser) isOp(op string) bool {
	t := p.tok()
	return t.Kind == sqlscan.Op && t.Text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.tok().Text)
	}
	return nil
}

// ident consumes an identifier (contextual keywords allowed).
func (p *parser) ident() (string, error) {
	t := p.tok()
	if t.Kind == sqlscan.Ident {
		p.next()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

// ---------- statement dispatch ----------

func (p *parser) parseStatement() (sqlast.Stmt, error) {
	switch {
	case p.isKw("EXPLAIN"):
		p.next()
		analyze := false
		if p.isWord("ANALYZE") {
			p.next()
			analyze = true
		}
		if p.isKw("EXPLAIN") {
			return nil, p.errf("EXPLAIN cannot be nested")
		}
		body, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &sqlast.ExplainStmt{Body: body, Analyze: analyze}, nil
	case p.isKw("VALIDTIME"), p.isKw("NONSEQUENCED"), p.isKw("TRANSACTIONTIME"):
		return p.parseTemporalStmt()
	case p.isKw("SELECT"), p.isOp("("):
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		return q.(sqlast.Stmt), nil
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("ALTER"):
		return p.parseAlter()
	case p.isKw("CALL"):
		return p.parseCall()
	case p.isKw("BEGIN"):
		return p.parseCompound("")
	case p.isKw("SET"):
		return p.parseSetStmt()
	case p.isKw("VALUES"):
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if s, ok := q.(sqlast.Stmt); ok {
			return s, nil
		}
		return nil, p.errf("VALUES is only valid as an INSERT source")
	case p.isWord("ANALYZE"):
		s := &sqlast.AnalyzeStmt{Pos: p.tok().Pos}
		p.next()
		if p.tok().Kind == sqlscan.Ident {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Table = name
		}
		return s, nil
	case p.isWord("SHOW"):
		s := &sqlast.ShowProcessListStmt{Pos: p.tok().Pos}
		p.next()
		if err := p.expectWord("PROCESSLIST"); err != nil {
			return nil, err
		}
		return s, nil
	case p.isWord("KILL"):
		s := &sqlast.KillStmt{Pos: p.tok().Pos}
		p.next()
		pid, err := p.number()
		if err != nil {
			return nil, err
		}
		s.PID = int64(pid)
		return s, nil
	default:
		return nil, p.errf("unexpected token %q at start of statement", p.tok().Text)
	}
}

// parseTemporalStmt parses a temporal statement modifier followed by a
// query or DML statement (paper §IV-B). The modifier may carry a
// secondary-dimension context for bitemporal evaluation:
//
//	VALIDTIME (DATE '2010-06-15') AND TRANSACTIONTIME (DATE '2010-03-01') SELECT ...
//
// slices valid time at the first date as believed on the second.
func (p *parser) parseTemporalStmt() (sqlast.Stmt, error) {
	ts := &sqlast.TemporalStmt{Pos: p.tok().Pos}
	if p.acceptKw("NONSEQUENCED") {
		switch {
		case p.acceptKw("VALIDTIME"):
		case p.acceptKw("TRANSACTIONTIME"):
			ts.Dim = sqlast.DimTransaction
		default:
			return nil, p.errf("expected VALIDTIME or TRANSACTIONTIME, found %q", p.tok().Text)
		}
		ts.Mod = sqlast.ModNonsequenced
	} else {
		switch {
		case p.acceptKw("VALIDTIME"):
		case p.acceptKw("TRANSACTIONTIME"):
			ts.Dim = sqlast.DimTransaction
		default:
			return nil, p.errf("expected VALIDTIME or TRANSACTIONTIME, found %q", p.tok().Text)
		}
		ts.Mod = sqlast.ModSequenced
		spec, err := p.parsePeriodSpec()
		if err != nil {
			return nil, err
		}
		ts.Period = spec
	}
	if p.acceptKw("AND") {
		ctx := &sqlast.DimContext{}
		switch {
		case p.acceptKw("VALIDTIME"):
		case p.acceptKw("TRANSACTIONTIME"):
			ctx.Dim = sqlast.DimTransaction
		default:
			return nil, p.errf("expected VALIDTIME or TRANSACTIONTIME after AND, found %q", p.tok().Text)
		}
		if ctx.Dim == ts.Dim {
			return nil, p.errf("bitemporal modifier names dimension %s twice", ctx.Dim.Keyword())
		}
		spec, err := p.parsePeriodSpec()
		if err != nil {
			return nil, err
		}
		ctx.Period = spec
		ts.Ctx = ctx
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	ts.Body = body
	return ts, nil
}

// parsePeriodSpec parses an optional parenthesized period of one or
// two expressions. The single-expression form is a point: (X) means
// the one-day period [X, X + 1 day).
func (p *parser) parsePeriodSpec() (*sqlast.PeriodSpec, error) {
	if !p.isOp("(") || p.queryAhead(1) {
		return nil, nil
	}
	p.next()
	begin, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	spec := &sqlast.PeriodSpec{Begin: begin}
	if p.acceptOp(",") {
		end, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		spec.End = end
	} else {
		spec.End = &sqlast.BinaryExpr{Op: "+", L: sqlast.CloneExpr(begin),
			R: &sqlast.Literal{Val: types.NewInt(1)}}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return spec, nil
}

// queryAhead reports whether the token at offset n starts a query.
func (p *parser) queryAhead(n int) bool {
	t := p.peek(n)
	if t.Kind != sqlscan.Keyword {
		return false
	}
	return t.Text == "SELECT" || t.Text == "VALUES" || t.Text == "VALIDTIME" ||
		t.Text == "NONSEQUENCED" || t.Text == "TRANSACTIONTIME"
}

// ---------- DML ----------

func (p *parser) parseInsert() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	st := &sqlast.InsertStmt{Pos: pos}
	if p.acceptKw("TABLE") {
		st.VarTarget = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.isOp("(") && !p.queryAhead(1) {
		p.next()
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	src, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	st.Source = src
	return st, nil
}

func (p *parser) parseUpdate() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	st := &sqlast.UpdateStmt{Pos: pos}
	if p.acceptKw("TABLE") {
		st.VarTarget = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKw("AS") {
		if st.Alias, err = p.ident(); err != nil {
			return nil, err
		}
	} else if p.tok().Kind == sqlscan.Ident && !p.isKw("SET") {
		st.Alias, _ = p.ident()
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		cpos := p.tok().Pos
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, sqlast.SetClause{Column: col, Value: val, Pos: cpos})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	st := &sqlast.DeleteStmt{Pos: pos}
	if p.acceptKw("TABLE") {
		st.VarTarget = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKw("AS") {
		if st.Alias, err = p.ident(); err != nil {
			return nil, err
		}
	} else if p.tok().Kind == sqlscan.Ident {
		st.Alias, _ = p.ident()
	}
	if p.acceptKw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseCall() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("CALL"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &sqlast.CallStmt{Name: name, Pos: pos}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if !p.acceptOp(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, a)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseSetStmt parses the PSM assignment SET v = expr.
func (p *parser) parseSetStmt() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &sqlast.SetStmt{Target: name, Value: val, Pos: pos}, nil
}

// number parses an integer token.
func (p *parser) number() (int, error) {
	t := p.tok()
	if t.Kind != sqlscan.Number {
		return 0, p.errf("expected number, found %q", t.Text)
	}
	p.next()
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("invalid integer %q", t.Text)
	}
	return n, nil
}

// makeLiteral builds a numeric literal value from token text.
func makeNumber(text string) types.Value {
	if strings.ContainsRune(text, '.') {
		f, _ := strconv.ParseFloat(text, 64)
		return types.NewFloat(f)
	}
	n, _ := strconv.ParseInt(text, 10, 64)
	return types.NewInt(n)
}
