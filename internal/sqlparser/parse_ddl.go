package sqlparser

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
)

func (p *parser) parseCreate() (sqlast.Stmt, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	replace := false
	if p.isWord("OR") || p.isKw("OR") {
		// CREATE OR REPLACE ...
		p.next()
		if err := p.expectWord("REPLACE"); err != nil {
			return nil, err
		}
		replace = true
	}
	switch {
	case p.isKw("TABLE") || ((p.isWord("TEMPORARY") || p.isWord("TEMP") || p.isWord("GLOBAL")) && !p.isKw("VIEW")):
		return p.parseCreateTable()
	case p.isKw("VIEW"):
		return p.parseCreateView()
	case p.isKw("FUNCTION"):
		return p.parseCreateFunction(replace)
	case p.isKw("PROCEDURE"):
		return p.parseCreateProcedure(replace)
	}
	return nil, p.errf("expected TABLE, VIEW, FUNCTION or PROCEDURE after CREATE, found %q", p.tok().Text)
}

func (p *parser) parseCreateTable() (sqlast.Stmt, error) {
	st := &sqlast.CreateTableStmt{Pos: p.tok().Pos}
	if p.acceptWord("GLOBAL") {
		// GLOBAL TEMPORARY
	}
	if p.acceptWord("TEMPORARY") || p.acceptWord("TEMP") {
		st.Temporary = true
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if p.isOp("(") && !p.queryAhead(1) {
		p.next()
		for {
			cpos := p.tok().Pos
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct, err := p.parseType()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, sqlast.ColumnDef{Name: cn, Type: ct, Pos: cpos})
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("AS") {
		if p.acceptKw("VALIDTIME") {
			st.ValidTime = true
			if p.acceptKw("AS") {
				if err := p.expectKw("TRANSACTIONTIME"); err != nil {
					return nil, err
				}
				st.TransactionTime = true
			}
			return st, nil
		}
		if p.acceptKw("TRANSACTIONTIME") {
			st.TransactionTime = true
			if p.acceptKw("AS") {
				if err := p.expectKw("VALIDTIME"); err != nil {
					return nil, err
				}
				st.ValidTime = true
			}
			return st, nil
		}
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		st.AsQuery = q
		if p.acceptKw("WITH") {
			if err := p.expectWord("DATA"); err != nil {
				return nil, err
			}
			st.WithData = true
		} else {
			// WITH DATA is the default in this dialect.
			st.WithData = true
		}
		for p.acceptKw("AS") {
			switch {
			case p.acceptKw("VALIDTIME"):
				st.ValidTime = true
			case p.acceptKw("TRANSACTIONTIME"):
				st.TransactionTime = true
			default:
				return nil, p.errf("expected VALIDTIME or TRANSACTIONTIME after AS")
			}
		}
	}
	if len(st.Cols) == 0 && st.AsQuery == nil {
		return nil, p.errf("CREATE TABLE %s requires a column list or AS (query)", st.Name)
	}
	return st, nil
}

func (p *parser) parseCreateView() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("VIEW"); err != nil {
		return nil, err
	}
	st := &sqlast.CreateViewStmt{Pos: pos}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if p.isOp("(") && !p.queryAhead(1) {
		p.next()
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	if p.acceptKw("NONSEQUENCED") {
		if err := p.expectKw("VALIDTIME"); err != nil {
			return nil, err
		}
		st.Mod = sqlast.ModNonsequenced
	} else if p.acceptKw("VALIDTIME") {
		st.Mod = sqlast.ModSequenced
	}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	st.Query = q
	return st, nil
}

func (p *parser) parseDrop() (sqlast.Stmt, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("TABLE"):
		ifx := p.acceptIfExists()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropTableStmt{Name: name, IfExists: ifx}, nil
	case p.acceptKw("VIEW"):
		ifx := p.acceptIfExists()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropViewStmt{Name: name, IfExists: ifx}, nil
	case p.acceptKw("FUNCTION"), p.isKw("PROCEDURE"):
		kind := "FUNCTION"
		if p.acceptKw("PROCEDURE") {
			kind = "PROCEDURE"
		}
		ifx := p.acceptIfExists()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropRoutineStmt{Kind: kind, Name: name, IfExists: ifx}, nil
	}
	return nil, p.errf("expected TABLE, VIEW, FUNCTION or PROCEDURE after DROP")
}

func (p *parser) acceptIfExists() bool {
	if p.isKw("IF") && isWordTok(p.peek(1), "EXISTS") {
		p.next()
		p.next()
		return true
	}
	return false
}

func (p *parser) parseAlter() (sqlast.Stmt, error) {
	if err := p.expectKw("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ADD"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("VALIDTIME"):
		return &sqlast.AlterAddValidTime{Table: name}, nil
	case p.acceptKw("TRANSACTIONTIME"):
		return &sqlast.AlterAddValidTime{Table: name, Transaction: true}, nil
	}
	return nil, p.errf("expected VALIDTIME or TRANSACTIONTIME after ADD")
}

// parseRoutineOptions consumes routine characteristics (READS SQL DATA,
// LANGUAGE SQL, DETERMINISTIC, ...) until the routine body starts.
func (p *parser) parseRoutineOptions() []string {
	var opts []string
	for {
		switch {
		case p.isWord("READS"), p.isWord("MODIFIES"):
			w := strings.ToUpper(p.next().Text)
			if p.acceptWord("SQL") {
				if p.acceptWord("DATA") {
					opts = append(opts, w+" SQL DATA")
				} else {
					opts = append(opts, w+" SQL")
				}
			} else {
				opts = append(opts, w)
			}
		case p.isWord("CONTAINS"):
			p.next()
			p.acceptWord("SQL")
			opts = append(opts, "CONTAINS SQL")
		case p.isWord("LANGUAGE"):
			p.next()
			l := "LANGUAGE"
			if p.tok().Kind == sqlscan.Ident {
				l += " " + strings.ToUpper(p.next().Text)
			}
			opts = append(opts, l)
		case p.isWord("DETERMINISTIC"):
			p.next()
			opts = append(opts, "DETERMINISTIC")
		case p.isKw("NOT") && isWordTok(p.peek(1), "DETERMINISTIC"):
			p.next()
			p.next()
			opts = append(opts, "NOT DETERMINISTIC")
		case p.isWord("SPECIFIC"):
			p.next()
			if p.tok().Kind == sqlscan.Ident {
				p.next()
			}
		default:
			return opts
		}
	}
}

func (p *parser) parseParamList(proc bool) ([]sqlast.ParamDef, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var out []sqlast.ParamDef
	if p.acceptOp(")") {
		return out, nil
	}
	for {
		pd := sqlast.ParamDef{Pos: p.tok().Pos}
		if proc {
			switch {
			case p.acceptKw("OUT"):
				pd.Mode = sqlast.ModeOut
			case p.acceptKw("INOUT"):
				pd.Mode = sqlast.ModeInOut
			case p.isKw("IN"):
				p.next()
				pd.Mode = sqlast.ModeIn
			}
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		pd.Name = name
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pd.Type = ty
		out = append(out, pd)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseCreateFunction(replace bool) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("FUNCTION"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	params, err := p.parseParamList(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("RETURNS"); err != nil {
		return nil, err
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	opts := p.parseRoutineOptions()
	body, err := p.parseRoutineBody()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateFunctionStmt{Name: name, Params: params, Returns: ret, Options: opts, Body: body, Replace: replace, Pos: pos}, nil
}

func (p *parser) parseCreateProcedure(replace bool) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("PROCEDURE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	params, err := p.parseParamList(true)
	if err != nil {
		return nil, err
	}
	opts := p.parseRoutineOptions()
	body, err := p.parseRoutineBody()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateProcedureStmt{Name: name, Params: params, Options: opts, Body: body, Replace: replace, Pos: pos}, nil
}

// parseRoutineBody parses a BEGIN...END compound or a single
// RETURN/statement body.
func (p *parser) parseRoutineBody() (sqlast.Stmt, error) {
	if p.isKw("BEGIN") || (p.tok().Kind == sqlscan.Ident && p.peek(1).Kind == sqlscan.Op && p.peek(1).Text == ":" && isWordTok(p.peek(2), "BEGIN")) {
		label := ""
		if !p.isKw("BEGIN") {
			label, _ = p.ident()
			p.next() // ':'
		}
		return p.parseCompound(label)
	}
	if p.isKw("RETURN") {
		return p.parsePSMStatement()
	}
	return p.parsePSMStatement()
}
