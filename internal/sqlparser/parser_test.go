package sqlparser

import (
	"strings"
	"testing"

	"taupsm/internal/sqlast"
)

// roundtrip parses src, prints it, re-parses the print, and re-prints;
// the two prints must match (printer output is a fixed point).
func roundtrip(t *testing.T, src string) sqlast.Stmt {
	t.Helper()
	s1, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p1 := s1.SQL()
	s2, err := ParseStatement(p1)
	if err != nil {
		t.Fatalf("reparse %q: %v", p1, err)
	}
	p2 := s2.SQL()
	if p1 != p2 {
		t.Fatalf("print not a fixed point:\nfirst:  %s\nsecond: %s", p1, p2)
	}
	return s1
}

func TestParseSimpleSelect(t *testing.T) {
	s := roundtrip(t, `SELECT i.title FROM item i, item_author ia WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
	sel, ok := s.(*sqlast.SelectStmt)
	if !ok {
		t.Fatalf("expected *SelectStmt, got %T", s)
	}
	if len(sel.From) != 2 {
		t.Fatalf("expected 2 FROM items, got %d", len(sel.From))
	}
	bt := sel.From[0].(*sqlast.BaseTable)
	if bt.Name != "item" || bt.Alias != "i" {
		t.Fatalf("bad first table ref: %+v", bt)
	}
}

func TestParseSequencedQuery(t *testing.T) {
	s := roundtrip(t, `VALIDTIME SELECT i.title FROM item i WHERE i.id = 3`)
	ts, ok := s.(*sqlast.TemporalStmt)
	if !ok || ts.Mod != sqlast.ModSequenced {
		t.Fatalf("expected sequenced TemporalStmt, got %T %v", s, s.SQL())
	}
	if ts.Period != nil {
		t.Fatalf("expected no period spec")
	}
}

func TestParseSequencedQueryWithContext(t *testing.T) {
	s := roundtrip(t, `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT i.title FROM item i`)
	ts := s.(*sqlast.TemporalStmt)
	if ts.Period == nil {
		t.Fatal("expected period spec")
	}
	if got := ts.Period.Begin.SQL(); got != "DATE '2010-01-01'" {
		t.Fatalf("bad begin: %s", got)
	}
}

func TestParseNonsequenced(t *testing.T) {
	s := roundtrip(t, `NONSEQUENCED VALIDTIME SELECT a.first_name FROM author a`)
	ts := s.(*sqlast.TemporalStmt)
	if ts.Mod != sqlast.ModNonsequenced {
		t.Fatalf("expected nonsequenced, got %v", ts.Mod)
	}
}

func TestParseCreateFunction(t *testing.T) {
	src := `
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END`
	s := roundtrip(t, src)
	f, ok := s.(*sqlast.CreateFunctionStmt)
	if !ok {
		t.Fatalf("expected CreateFunctionStmt, got %T", s)
	}
	if f.Name != "get_author_name" || len(f.Params) != 1 || f.Params[0].Name != "aid" {
		t.Fatalf("bad signature: %+v", f)
	}
	if f.Returns.Base != "CHAR" || f.Returns.Length != 50 {
		t.Fatalf("bad return type: %+v", f.Returns)
	}
	body, ok := f.Body.(*sqlast.CompoundStmt)
	if !ok {
		t.Fatalf("expected compound body, got %T", f.Body)
	}
	if len(body.VarDecls) != 1 || len(body.Stmts) != 2 {
		t.Fatalf("bad body: %d decls %d stmts", len(body.VarDecls), len(body.Stmts))
	}
}

func TestParseProcedureWithControlFlow(t *testing.T) {
	src := `
CREATE PROCEDURE count_books (IN pid CHAR(10), OUT total INTEGER)
LANGUAGE SQL
BEGIN
  DECLARE n INTEGER DEFAULT 0;
  DECLARE done INTEGER DEFAULT 0;
  DECLARE cur CURSOR FOR SELECT item_id FROM item_publisher WHERE publisher_id = pid;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  wloop: WHILE done = 0 DO
    FETCH cur INTO pid;
    IF done = 0 THEN
      SET n = n + 1;
    END IF;
  END WHILE wloop;
  CLOSE cur;
  SET total = n;
END`
	s := roundtrip(t, src)
	pr, ok := s.(*sqlast.CreateProcedureStmt)
	if !ok {
		t.Fatalf("expected procedure, got %T", s)
	}
	if pr.Params[1].Mode != sqlast.ModeOut {
		t.Fatalf("expected OUT mode, got %v", pr.Params[1].Mode)
	}
	body := pr.Body.(*sqlast.CompoundStmt)
	if len(body.Cursors) != 1 || len(body.Handlers) != 1 {
		t.Fatalf("bad decls: %d cursors %d handlers", len(body.Cursors), len(body.Handlers))
	}
}

func TestParseControlStatements(t *testing.T) {
	for _, src := range []string{
		`CREATE PROCEDURE p () BEGIN SET x = 1; END`,
		`CREATE PROCEDURE p () BEGIN IF x = 1 THEN SET y = 2; ELSEIF x = 2 THEN SET y = 3; ELSE SET y = 4; END IF; END`,
		`CREATE PROCEDURE p () BEGIN CASE WHEN x = 1 THEN SET y = 2; ELSE SET y = 3; END CASE; END`,
		`CREATE PROCEDURE p () BEGIN CASE x WHEN 1 THEN SET y = 2; END CASE; END`,
		`CREATE PROCEDURE p () BEGIN lbl: REPEAT SET x = x + 1; UNTIL x > 10 END REPEAT lbl; END`,
		`CREATE PROCEDURE p () BEGIN lbl: LOOP SET x = x + 1; IF x > 3 THEN LEAVE lbl; END IF; END LOOP lbl; END`,
		`CREATE PROCEDURE p () BEGIN FOR r AS SELECT a FROM t DO SET x = x + r; END FOR; END`,
		`CREATE PROCEDURE p () BEGIN FOR r AS c1 CURSOR FOR SELECT a FROM t DO SET x = 1; END FOR; END`,
		`CREATE PROCEDURE p () BEGIN lbl: WHILE x < 3 DO ITERATE lbl; END WHILE lbl; END`,
		`CREATE PROCEDURE p () BEGIN SIGNAL SQLSTATE '70001' SET MESSAGE_TEXT = 'bad'; END`,
		`CREATE PROCEDURE p () BEGIN CALL q(1, 'a'); END`,
	} {
		roundtrip(t, src)
	}
}

func TestParseQueries(t *testing.T) {
	for _, src := range []string{
		`SELECT DISTINCT a, b AS bb FROM t WHERE a BETWEEN 1 AND 3 ORDER BY b DESC`,
		`SELECT * FROM t WHERE a IN (1, 2, 3)`,
		`SELECT * FROM t WHERE a IN (SELECT b FROM u)`,
		`SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.x)`,
		`SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM u)`,
		`SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2`,
		`SELECT a FROM t UNION SELECT b FROM u`,
		`SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v`,
		`SELECT a FROM t INTERSECT SELECT b FROM u`,
		`SELECT x.a FROM (SELECT a FROM t) AS x`,
		`SELECT f.c1 FROM TABLE(fn(1, 2)) AS f`,
		`SELECT t.a FROM t JOIN u ON t.id = u.id`,
		`SELECT t.a FROM t LEFT JOIN u ON t.id = u.id WHERE u.id IS NULL`,
		`SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t`,
		`SELECT CAST(a AS INTEGER) FROM t`,
		`SELECT a FROM t WHERE name LIKE 'Ben%'`,
		`SELECT a FROM t FETCH FIRST 5 ROWS ONLY`,
		`SELECT SUM(price * 2), AVG(price), MIN(a), MAX(a), COUNT(DISTINCT a) FROM t`,
		`SELECT a FROM t WHERE d >= DATE '2010-01-01' AND d < CURRENT_DATE`,
		`SELECT first_name || ' ' || last_name FROM author`,
		`SELECT -x + 3 * (y - 2) / 4 FROM t`,
	} {
		roundtrip(t, src)
	}
}

func TestParseDML(t *testing.T) {
	for _, src := range []string{
		`INSERT INTO t VALUES (1, 'a', DATE '2010-01-01')`,
		`INSERT INTO t (a, b) VALUES (1, 2), (3, 4)`,
		`INSERT INTO t SELECT a, b FROM u WHERE a > 0`,
		`INSERT INTO TABLE v SELECT a FROM u`,
		`UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'`,
		`UPDATE TABLE v SET a = 1`,
		`DELETE FROM t WHERE a = 1`,
		`DELETE FROM TABLE v WHERE begin_time < DATE '2010-06-01'`,
		`VALIDTIME UPDATE t SET a = 1 WHERE b = 2`,
		`VALIDTIME (DATE '2010-01-01', DATE '2010-02-01') DELETE FROM t WHERE a = 1`,
	} {
		roundtrip(t, src)
	}
}

func TestParseDDL(t *testing.T) {
	for _, src := range []string{
		`CREATE TABLE t (a INTEGER, b CHAR(10), c DATE)`,
		`CREATE TABLE item (id CHAR(10), title VARCHAR(100)) AS VALIDTIME`,
		`CREATE TEMPORARY TABLE ts AS (SELECT begin_time AS time_point FROM author UNION SELECT end_time AS time_point FROM author)`,
		`CREATE VIEW v AS (SELECT a FROM t)`,
		`CREATE VIEW v (x, y) AS SELECT a, b FROM t`,
		`DROP TABLE t`,
		`DROP TABLE IF EXISTS t`,
		`DROP VIEW IF EXISTS v`,
		`DROP FUNCTION f`,
		`DROP PROCEDURE IF EXISTS p`,
		`ALTER TABLE t ADD VALIDTIME`,
	} {
		roundtrip(t, src)
	}
}

func TestParseCollectionReturnType(t *testing.T) {
	src := `CREATE FUNCTION ps_f (aid CHAR(10), period_begin DATE, period_end DATE)
RETURNS ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY
READS SQL DATA
BEGIN
  RETURN NULL;
END`
	s := roundtrip(t, src)
	f := s.(*sqlast.CreateFunctionStmt)
	if !f.Returns.IsCollection() {
		t.Fatalf("expected collection return type, got %+v", f.Returns)
	}
	if len(f.Returns.Row) != 3 || f.Returns.Row[1].Name != "begin_time" {
		t.Fatalf("bad row fields: %+v", f.Returns.Row)
	}
}

func TestParseScriptMultiple(t *testing.T) {
	stmts, err := ParseScript(`SELECT 1 FROM t; SELECT 2 FROM u;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("expected 2 statements, got %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT FROM`,
		`SELECT a FROM t WHERE`,
		`CREATE TABLE`,
		`CREATE TABLE t`,
		`INSERT t VALUES (1)`,
		`SELECT a FROM t GROUP a`,
		`VALIDTIME`,
		`NONSEQUENCED SELECT a FROM t`,
		`CREATE FUNCTION f () BEGIN END`,
		`SELECT a FROM t WHERE a = 'unterminated`,
		`SELECT a FROM t WHERE a BETWEEN 1`,
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	// error positions
	_, err := ParseStatement("SELECT a\nFROM t WHERE ???")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("expected line-2 position in error, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s, err := ParseStatement(`SELECT a FROM t WHERE b = 1`)
	if err != nil {
		t.Fatal(err)
	}
	c := sqlast.CloneStmt(s)
	// mutate the clone's WHERE
	c.(*sqlast.SelectStmt).Where = nil
	if s.(*sqlast.SelectStmt).Where == nil {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestWalkFindsTables(t *testing.T) {
	s, err := ParseStatement(`SELECT i.title FROM item i, item_author ia WHERE ia.item_id IN (SELECT item_id FROM item_publisher)`)
	if err != nil {
		t.Fatal(err)
	}
	var tables []string
	sqlast.Walk(s, func(n sqlast.Node) bool {
		if bt, ok := n.(*sqlast.BaseTable); ok {
			tables = append(tables, bt.Name)
		}
		return true
	})
	if len(tables) != 3 {
		t.Fatalf("expected 3 base tables, got %v", tables)
	}
}

func TestMapExprsRewritesFunctionCalls(t *testing.T) {
	s, err := ParseStatement(`SELECT f(a) FROM t WHERE g(b) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	sqlast.MapExprs(s, func(e sqlast.Expr) sqlast.Expr {
		if fc, ok := e.(*sqlast.FuncCall); ok {
			fc.Name = "max_" + fc.Name
		}
		return e
	})
	out := s.SQL()
	if !strings.Contains(out, "max_f(") || !strings.Contains(out, "max_g(") {
		t.Fatalf("rewrite failed: %s", out)
	}
}

func TestParseTransactionTime(t *testing.T) {
	for _, src := range []string{
		`CREATE TABLE audit (a INTEGER) AS TRANSACTIONTIME`,
		`ALTER TABLE t ADD TRANSACTIONTIME`,
		`TRANSACTIONTIME SELECT a FROM t`,
		`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-06-01') SELECT a FROM t`,
		`NONSEQUENCED TRANSACTIONTIME SELECT a, begin_time FROM t`,
	} {
		roundtrip(t, src)
	}
	s := roundtrip(t, `TRANSACTIONTIME SELECT a FROM t`)
	ts, ok := s.(*sqlast.TemporalStmt)
	if !ok || ts.Dim != sqlast.DimTransaction || ts.Mod != sqlast.ModSequenced {
		t.Fatalf("expected sequenced transaction-time statement, got %#v", s)
	}
	ct := roundtrip(t, `CREATE TABLE audit (a INTEGER) AS TRANSACTIONTIME`).(*sqlast.CreateTableStmt)
	if !ct.TransactionTime || ct.ValidTime {
		t.Fatalf("expected transaction-time table flag: %+v", ct)
	}
	al := roundtrip(t, `ALTER TABLE t ADD TRANSACTIONTIME`).(*sqlast.AlterAddValidTime)
	if !al.Transaction {
		t.Fatalf("expected transaction flag on ALTER: %+v", al)
	}
}

func TestParseTransactionTimeErrors(t *testing.T) {
	for _, src := range []string{
		`NONSEQUENCED SELECT a FROM t`,
		`ALTER TABLE t ADD SOMETHING`,
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
