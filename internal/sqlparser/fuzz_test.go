package sqlparser

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary text to the script parser. The parser is
// the first thing untrusted input touches (REPL lines, script files,
// routine bodies replayed from the WAL), so its contract is: parse or
// error, never panic, and every accepted statement must render back via
// SQL() without panicking either. Seeds come from the repository's SQL
// corpora plus statements covering each grammar production.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"SELECT 1;",
		"CREATE TABLE p (id INTEGER, name CHAR(10)) AS VALIDTIME;",
		"VALIDTIME SELECT a.x FROM a, b WHERE a.id = b.id;",
		"VALIDTIME PERIOD [2010-01-01 - 2011-01-01) UPDATE p SET name = 'x' WHERE id = 1;",
		"NONSEQUENCED VALIDTIME INSERT INTO p VALUES (1, 'a', DATE '2010-01-01', DATE '2011-01-01');",
		"CREATE FUNCTION f (x INTEGER) RETURNS INTEGER BEGIN DECLARE y INTEGER; SET y = x + 1; RETURN y; END;",
		"CREATE PROCEDURE q (IN a INTEGER, OUT b INTEGER) BEGIN SET b = a * 2; END;",
		"CREATE VIEW v AS SELECT id FROM p WHERE id > 0;",
		"EXPLAIN VALIDTIME SELECT * FROM p;",
		"ALTER TABLE p ADD VALIDTIME;",
		"DELETE FROM p WHERE id = 1; DROP TABLE p;",
		"SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t GROUP BY y HAVING COUNT(*) > 1 ORDER BY z;",
		"CREATE TABLE bt (id CHAR(4), title CHAR(20)) AS VALIDTIME AS TRANSACTIONTIME;",
		"ALTER TABLE p ADD TRANSACTIONTIME;",
		"VALIDTIME (DATE '2011-05-01') AND TRANSACTIONTIME (DATE '2011-01-15') SELECT title FROM bt;",
		"TRANSACTIONTIME (DATE '2011-01-01', DATE '2011-05-01') SELECT title FROM bt;",
		"NONSEQUENCED TRANSACTIONTIME SELECT title, tt_begin_time, tt_end_time FROM bt;",
		"VALIDTIME (DATE '2011-03-01', DATE '2011-07-01') UPDATE bt SET title = 'x' WHERE id = 'p1';",
		"VALIDTIME (DATE '2011-01-01') AND TRANSACTIONTIME SELECT 1 FROM bt;",
		"SET SCHEMA 'x'; -- comment\nSELECT 'unterminated",
		"((((((((((",
	} {
		f.Add(s)
	}
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.sql"))
	for _, p := range paths {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseScript(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			_ = s.SQL()
		}
	})
}
