package sqlparser

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
)

// parseCompound parses BEGIN [ATOMIC] decls stmts END [label].
func (p *parser) parseCompound(label string) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("BEGIN"); err != nil {
		return nil, err
	}
	c := &sqlast.CompoundStmt{Label: label, Pos: pos}
	if p.acceptWord("ATOMIC") {
		c.Atomic = true
	}
	for !p.isKw("END") {
		if p.tok().Kind == sqlscan.EOF {
			return nil, p.errf("unexpected end of input inside BEGIN...END")
		}
		if p.isKw("DECLARE") {
			if err := p.parseDeclare(c); err != nil {
				return nil, err
			}
		} else {
			s, err := p.parsePSMStatement()
			if err != nil {
				return nil, err
			}
			c.Stmts = append(c.Stmts, s)
		}
		if !p.acceptOp(";") {
			break
		}
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if label != "" && p.isWord(label) {
		p.next()
	} else if p.tok().Kind == sqlscan.Ident && c.Label == "" && !p.isOp(";") {
		// tolerate a trailing label we didn't capture
	}
	return c, nil
}

func (p *parser) parseDeclare(c *sqlast.CompoundStmt) error {
	pos := p.tok().Pos
	if err := p.expectKw("DECLARE"); err != nil {
		return err
	}
	// handler?
	if p.isKw("CONTINUE") || p.isKw("EXIT") {
		kind := p.next().Text
		if err := p.expectKw("HANDLER"); err != nil {
			return err
		}
		if err := p.expectKw("FOR"); err != nil {
			return err
		}
		var cond string
		switch {
		case p.isKw("NOT"):
			p.next()
			if err := p.expectWord("FOUND"); err != nil {
				return err
			}
			cond = "NOT FOUND"
		case p.isWord("SQLEXCEPTION"):
			p.next()
			cond = "SQLEXCEPTION"
		case p.isWord("SQLSTATE"):
			p.next()
			p.acceptWord("VALUE")
			if p.tok().Kind != sqlscan.String {
				return p.errf("expected SQLSTATE string literal")
			}
			cond = "SQLSTATE '" + p.next().Text + "'"
		default:
			return p.errf("expected NOT FOUND, SQLEXCEPTION or SQLSTATE in handler declaration")
		}
		action, err := p.parsePSMStatement()
		if err != nil {
			return err
		}
		c.Handlers = append(c.Handlers, &sqlast.HandlerDecl{Kind: kind, Condition: cond, Action: action, Pos: pos})
		return nil
	}
	// variable or cursor
	name, err := p.ident()
	if err != nil {
		return err
	}
	if p.acceptKw("CURSOR") {
		if err := p.expectKw("FOR"); err != nil {
			return err
		}
		q, err := p.parseCursorQuery()
		if err != nil {
			return err
		}
		c.Cursors = append(c.Cursors, &sqlast.CursorDecl{Name: name, Query: q, Pos: pos})
		return nil
	}
	names := []string{name}
	for p.acceptOp(",") {
		n, err := p.ident()
		if err != nil {
			return err
		}
		names = append(names, n)
	}
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	d := &sqlast.VarDecl{Names: names, Type: ty, Pos: pos}
	if p.acceptKw("DEFAULT") {
		def, err := p.parseExpr()
		if err != nil {
			return err
		}
		d.Default = def
	}
	c.VarDecls = append(c.VarDecls, d)
	return nil
}

// parseCursorQuery parses the query of a cursor or FOR statement,
// allowing an optional temporal modifier (meaningful only in
// nonsequenced contexts, enforced by the translator).
func (p *parser) parseCursorQuery() (sqlast.Stmt, error) {
	if p.isKw("VALIDTIME") || p.isKw("NONSEQUENCED") {
		return p.parseTemporalStmt()
	}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	return q.(sqlast.Stmt), nil
}

// parsePSMStatement parses a statement occurring inside a routine body
// (which includes plain SQL statements).
func (p *parser) parsePSMStatement() (sqlast.Stmt, error) {
	// label: WHILE/LOOP/REPEAT/FOR/BEGIN
	if p.tok().Kind == sqlscan.Ident && p.peek(1).Kind == sqlscan.Op && p.peek(1).Text == ":" {
		label, _ := p.ident()
		p.next() // ':'
		switch {
		case p.isKw("WHILE"):
			return p.parseWhile(label)
		case p.isKw("REPEAT"):
			return p.parseRepeat(label)
		case p.isKw("LOOP"):
			return p.parseLoop(label)
		case p.isKw("FOR"):
			return p.parseFor(label)
		case p.isKw("BEGIN"):
			return p.parseCompound(label)
		}
		return nil, p.errf("label must precede WHILE, REPEAT, LOOP, FOR or BEGIN")
	}
	switch {
	case p.isKw("BEGIN"):
		return p.parseCompound("")
	case p.isKw("SET"):
		return p.parseSetStmt()
	case p.isKw("IF"):
		return p.parseIf()
	case p.isKw("CASE"):
		return p.parseCaseStmt()
	case p.isKw("WHILE"):
		return p.parseWhile("")
	case p.isKw("REPEAT"):
		return p.parseRepeat("")
	case p.isKw("LOOP"):
		return p.parseLoop("")
	case p.isKw("FOR"):
		return p.parseFor("")
	case p.isKw("LEAVE"):
		pos := p.next().Pos
		l, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.LeaveStmt{Label: l, Pos: pos}, nil
	case p.isKw("ITERATE"):
		pos := p.next().Pos
		l, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.IterateStmt{Label: l, Pos: pos}, nil
	case p.isKw("RETURN"):
		pos := p.next().Pos
		r := &sqlast.ReturnStmt{Pos: pos}
		if !p.isOp(";") && !p.isKw("END") && p.tok().Kind != sqlscan.EOF {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		return r, nil
	case p.isKw("OPEN"):
		pos := p.next().Pos
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.OpenStmt{Cursor: cname, Pos: pos}, nil
	case p.isKw("FETCH"):
		pos := p.next().Pos
		p.acceptKw("FROM")
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		f := &sqlast.FetchStmt{Cursor: cname, Pos: pos}
		for {
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			f.Into = append(f.Into, v)
			if !p.acceptOp(",") {
				break
			}
		}
		return f, nil
	case p.isKw("CLOSE"):
		pos := p.next().Pos
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.CloseStmt{Cursor: cname, Pos: pos}, nil
	case p.isKw("SIGNAL"):
		pos := p.next().Pos
		if err := p.expectWord("SQLSTATE"); err != nil {
			return nil, err
		}
		if p.tok().Kind != sqlscan.String {
			return nil, p.errf("expected SQLSTATE string literal")
		}
		st := &sqlast.SignalStmt{SQLState: p.next().Text, Pos: pos}
		if p.acceptKw("SET") {
			if err := p.expectWord("MESSAGE_TEXT"); err != nil {
				return nil, err
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			if p.tok().Kind != sqlscan.String {
				return nil, p.errf("expected message string literal")
			}
			st.Message = p.next().Text
		}
		return st, nil
	default:
		return p.parseStatement()
	}
}

func (p *parser) parseIf() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("IF"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("THEN"); err != nil {
		return nil, err
	}
	st := &sqlast.IfStmt{Cond: cond, Pos: pos}
	if st.Then, err = p.parseStmtListUntil("ELSEIF", "ELSE", "END"); err != nil {
		return nil, err
	}
	for p.isKw("ELSEIF") {
		p.next()
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtListUntil("ELSEIF", "ELSE", "END")
		if err != nil {
			return nil, err
		}
		st.ElseIfs = append(st.ElseIfs, sqlast.ElseIf{Cond: c, Then: body})
	}
	if p.acceptKw("ELSE") {
		if st.Else, err = p.parseStmtListUntil("END"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if err := p.expectKw("IF"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseCaseStmt() (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	st := &sqlast.CaseStmt{Pos: pos}
	var err error
	if !p.isKw("WHEN") {
		if st.Operand, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	for p.acceptKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtListUntil("WHEN", "ELSE", "END")
		if err != nil {
			return nil, err
		}
		st.Whens = append(st.Whens, sqlast.CaseWhenStmt{When: w, Then: body})
	}
	if p.acceptKw("ELSE") {
		if st.Else, err = p.parseStmtListUntil("END"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseWhile(label string) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("WHILE"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("DO"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtListUntil("END")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if err := p.expectKw("WHILE"); err != nil {
		return nil, err
	}
	if label != "" {
		p.acceptWord(label)
	}
	return &sqlast.WhileStmt{Label: label, Cond: cond, Body: body, Pos: pos}, nil
}

func (p *parser) parseRepeat(label string) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("REPEAT"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtListUntil("UNTIL")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("UNTIL"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if err := p.expectKw("REPEAT"); err != nil {
		return nil, err
	}
	if label != "" {
		p.acceptWord(label)
	}
	return &sqlast.RepeatStmt{Label: label, Body: body, Until: cond, Pos: pos}, nil
}

func (p *parser) parseLoop(label string) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("LOOP"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtListUntil("END")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if err := p.expectKw("LOOP"); err != nil {
		return nil, err
	}
	if label != "" {
		p.acceptWord(label)
	}
	return &sqlast.LoopStmt{Label: label, Body: body, Pos: pos}, nil
}

func (p *parser) parseFor(label string) (sqlast.Stmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("FOR"); err != nil {
		return nil, err
	}
	st := &sqlast.ForStmt{Label: label, Pos: pos}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.LoopVar = name
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	// optional: cursorname CURSOR FOR
	if p.tok().Kind == sqlscan.Ident && isWordTok(p.peek(1), "CURSOR") {
		st.Cursor, _ = p.ident()
		p.next() // CURSOR
		if err := p.expectKw("FOR"); err != nil {
			return nil, err
		}
	}
	q, err := p.parseCursorQuery()
	if err != nil {
		return nil, err
	}
	st.Query = q
	if err := p.expectKw("DO"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtListUntil("END")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FOR"); err != nil {
		return nil, err
	}
	if label != "" {
		p.acceptWord(label)
	}
	st.Body = body
	return st, nil
}

// parseStmtListUntil parses semicolon-separated statements until one of
// the stop keywords appears at statement start.
func (p *parser) parseStmtListUntil(stops ...string) ([]sqlast.Stmt, error) {
	var out []sqlast.Stmt
	for {
		if p.tok().Kind == sqlscan.EOF {
			return nil, p.errf("unexpected end of input, expected %s", strings.Join(stops, "/"))
		}
		stopped := false
		for _, s := range stops {
			if p.isKw(s) {
				stopped = true
				break
			}
		}
		if stopped {
			return out, nil
		}
		st, err := p.parsePSMStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.acceptOp(";") {
			for _, s := range stops {
				if p.isKw(s) {
					return out, nil
				}
			}
			return nil, p.errf("expected ';' after statement, found %q", p.tok().Text)
		}
	}
}
