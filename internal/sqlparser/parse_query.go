package sqlparser

import (
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
)

// parseQueryExpr parses a query body: SELECT blocks combined with
// UNION/EXCEPT/INTERSECT (left-associative, UNION/EXCEPT lower
// precedence than INTERSECT), a parenthesized query, or VALUES.
func (p *parser) parseQueryExpr() (sqlast.QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.isKw("UNION") || p.isKw("EXCEPT") {
		op := p.next().Text
		all := p.acceptKw("ALL")
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &sqlast.SetOpExpr{Op: op, All: all, L: left, R: right}
	}
	if so, ok := left.(*sqlast.SetOpExpr); ok && p.isKw("ORDER") {
		ob, err := p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		so.OrderBy = ob
	}
	return left, nil
}

func (p *parser) parseQueryTerm() (sqlast.QueryExpr, error) {
	left, err := p.parseQueryPrimary()
	if err != nil {
		return nil, err
	}
	for p.isKw("INTERSECT") {
		p.next()
		all := p.acceptKw("ALL")
		right, err := p.parseQueryPrimary()
		if err != nil {
			return nil, err
		}
		left = &sqlast.SetOpExpr{Op: "INTERSECT", All: all, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseQueryPrimary() (sqlast.QueryExpr, error) {
	switch {
	case p.isOp("("):
		p.next()
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return q, nil
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("VALUES"):
		return p.parseValues()
	}
	return nil, p.errf("expected SELECT, VALUES or '(', found %q", p.tok().Text)
}

func (p *parser) parseValues() (sqlast.QueryExpr, error) {
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	v := &sqlast.ValuesExpr{}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		v.Rows = append(v.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return v, nil
}

func (p *parser) parseSelect() (*sqlast.SelectStmt, error) {
	pos := p.tok().Pos
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &sqlast.SelectStmt{Pos: pos}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	// select list
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, it)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, r)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	var err error
	if p.acceptKw("WHERE") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		if s.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.isKw("ORDER") {
		if s.OrderBy, err = p.parseOrderBy(); err != nil {
			return nil, err
		}
	}
	// FETCH FIRST n ROWS ONLY | LIMIT n
	if p.isKw("FETCH") && isWordTok(p.peek(1), "FIRST") {
		p.next() // FETCH
		p.next() // FIRST
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		s.Limit = &sqlast.Literal{Val: makeNumber(intText(n))}
		p.acceptWord("ROW")
		p.acceptWord("ROWS")
		if err := p.expectWord("ONLY"); err != nil {
			return nil, err
		}
	} else if p.acceptWord("LIMIT") {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		s.Limit = &sqlast.Literal{Val: makeNumber(intText(n))}
	}
	return s, nil
}

func intText(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func isWordTok(t sqlscan.Token, w string) bool {
	return (t.Kind == sqlscan.Keyword || t.Kind == sqlscan.Ident) && equalFold(t.Text, w)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func (p *parser) parseOrderBy() ([]sqlast.OrderItem, error) {
	if err := p.expectKw("ORDER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("BY"); err != nil {
		return nil, err
	}
	var out []sqlast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := sqlast.OrderItem{Expr: e}
		if p.acceptWord("DESC") {
			it.Desc = true
		} else {
			p.acceptWord("ASC")
		}
		out = append(out, it)
		if !p.acceptOp(",") {
			break
		}
	}
	return out, nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.isOp("*") {
		p.next()
		return sqlast.SelectItem{Star: true}, nil
	}
	// t.* form
	if p.tok().Kind == sqlscan.Ident && p.peek(1).Kind == sqlscan.Op && p.peek(1).Text == "." &&
		p.peek(2).Kind == sqlscan.Op && p.peek(2).Text == "*" {
		name, _ := p.ident()
		p.next() // .
		p.next() // *
		return sqlast.SelectItem{TableStar: name}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	it := sqlast.SelectItem{Expr: e}
	if p.acceptKw("AS") {
		if it.Alias, err = p.ident(); err != nil {
			return it, err
		}
	} else if p.tok().Kind == sqlscan.Ident {
		it.Alias, _ = p.ident()
	}
	return it, nil
}

// parseTableRef parses one FROM element, including chained JOINs.
func (p *parser) parseTableRef() (sqlast.TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt string
		switch {
		case p.isKw("JOIN"):
			p.next()
			jt = "INNER"
		case p.isKw("INNER") && isWordTok(p.peek(1), "JOIN"):
			p.next()
			p.next()
			jt = "INNER"
		case p.isKw("LEFT"):
			p.next()
			p.acceptWord("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = "LEFT"
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.JoinExpr{L: left, R: right, Type: jt, On: on}
	}
}

func (p *parser) parseTablePrimary() (sqlast.TableRef, error) {
	switch {
	case p.isOp("("):
		p.next()
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		d := &sqlast.DerivedTable{Query: q}
		if err := p.parseCorrelation(&d.Alias, &d.Cols, true); err != nil {
			return nil, err
		}
		return d, nil
	case p.isKw("TABLE"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call, ok := e.(*sqlast.FuncCall)
		if !ok {
			return nil, p.errf("TABLE(...) requires a function invocation")
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		t := &sqlast.TableFunc{Call: call}
		if err := p.parseCorrelation(&t.Alias, &t.Cols, true); err != nil {
			return nil, err
		}
		return t, nil
	default:
		npos := p.tok().Pos
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		// fn(args) AS t — a table function without the TABLE keyword
		if p.isOp("(") {
			p.i-- // rewind the identifier
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call, ok := e.(*sqlast.FuncCall)
			if !ok {
				return nil, p.errf("expected table function in FROM clause")
			}
			t := &sqlast.TableFunc{Call: call}
			if err := p.parseCorrelation(&t.Alias, &t.Cols, true); err != nil {
				return nil, err
			}
			return t, nil
		}
		b := &sqlast.BaseTable{Name: name, Pos: npos}
		var cols []string
		if err := p.parseCorrelation(&b.Alias, &cols, false); err != nil {
			return nil, err
		}
		return b, nil
	}
}

// parseCorrelation parses [AS] alias [(col, ...)].
func (p *parser) parseCorrelation(alias *string, cols *[]string, required bool) error {
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return err
		}
		*alias = a
	} else if p.tok().Kind == sqlscan.Ident {
		a, _ := p.ident()
		*alias = a
	} else if required {
		return p.errf("expected correlation name, found %q", p.tok().Text)
	}
	if cols != nil && p.isOp("(") && p.peek(1).Kind == sqlscan.Ident &&
		(p.peek(2).Kind == sqlscan.Op && (p.peek(2).Text == "," || p.peek(2).Text == ")")) {
		p.next()
		for {
			c, err := p.ident()
			if err != nil {
				return err
			}
			*cols = append(*cols, c)
			if !p.acceptOp(",") {
				break
			}
		}
		return p.expectOp(")")
	}
	return nil
}
