module taupsm

go 1.22
