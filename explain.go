package taupsm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"taupsm/internal/check"
	"taupsm/internal/core"
	"taupsm/internal/obs"
	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/temporal"
	"taupsm/internal/types"
)

// Explain describes how one Temporal SQL/PSM statement would execute —
// the translation plan and the slicing statistics — without executing
// it. It is produced by DB.Explain and by the SQL-level
// `EXPLAIN <statement>` (e.g. `EXPLAIN VALIDTIME SELECT ...`).
//
// The slicing numbers are exact, not estimates: ConstantPeriods and
// Fragments are computed from the stored data with the same code the
// executor uses, so running the statement immediately afterwards
// reports the same values through DB.Metrics (stratum.constant_periods
// and stratum.fragments).
type Explain struct {
	// Kind is the statement's temporal class: current, sequenced, or
	// nonsequenced.
	Kind string
	// Strategy is the slicing strategy a sequenced statement would use
	// (after resolving Auto with the §VII-F heuristic).
	Strategy Strategy
	// AutoReason names the heuristic clause that decided Strategy when
	// the database strategy is Auto; empty for fixed strategies.
	AutoReason string
	// TemporalTables are the temporal tables reachable from the
	// statement, directly or through routines.
	TemporalTables []string
	// Routines counts the transformed routine clones (curr_/max_/ps_)
	// the translation registers before running.
	Routines int
	// ContextBegin/ContextEnd are the resolved temporal context bounds
	// (sequenced statements only).
	ContextBegin, ContextEnd string
	// ConstantPeriods is the number of constant periods MAX slicing
	// computes for the context — the number of times MAX evaluates the
	// statement. Zero for PERST and non-sequenced statements.
	ConstantPeriods int
	// Fragments counts the stored row fragments of the reachable
	// temporal tables overlapping the context — the candidate
	// fragments a sequenced statement evaluates.
	Fragments int
	// HasStats reports that the statistics registry supplied the
	// estimates below; EstConstantPeriods and EstRows are the registry's
	// predictions of ConstantPeriods and Fragments, shown side by side
	// with the exact numbers so estimate drift is visible per statement.
	HasStats           bool
	EstConstantPeriods int64
	EstRows            int64
	// UsesPerPeriodCursor reports the PERST per-period cursor pattern
	// (the heuristic's clause b).
	UsesPerPeriodCursor bool
	// Parallelism is the worker count execution would use for this
	// statement: min(DB.Parallelism, ConstantPeriods) when the parallel
	// MAX fragment path applies (statement shape safe, more than one
	// period), 1 otherwise. Zero for non-sequenced statements.
	Parallelism int
	// TranslationCacheHit and CPCacheHit report whether the translation
	// and constant-period caches would serve this statement without
	// recomputation. The probes are read-only — EXPLAIN neither fills
	// the caches nor moves their hit/miss counters.
	TranslationCacheHit bool
	CPCacheHit          bool
	// PlanReuse reports whether a shared prepared plan for this
	// statement already exists (built by a prior execution and still
	// attached to its translation-cache entry): executing now would
	// serve source relations, join hash tables, and sorted interval
	// spans from it instead of rebuilding them per fragment. Read-only
	// probe, like TranslationCacheHit.
	PlanReuse bool
	// JoinMethod is the predicted interval-join algorithm for the
	// statement's temporal join — "sweep" (sweep-line over the sorted
	// interval spans) or "probe" (per-row interval-index probes) — and
	// JoinReason the cost-model clause that decided it. Empty when the
	// statement reaches fewer than two temporal tables (no temporal
	// join to choose for).
	JoinMethod string
	JoinReason string
	// Durability summarizes the database's write-ahead-log state (epoch,
	// log bytes, what recovery replayed) for persistent databases; empty
	// for in-memory ones.
	Durability string
	// Reads and Writes are the statement's inferred effect sets: the
	// stored tables (and views) it can read or write, each with the
	// temporal dimensions touched, e.g. "item[validtime]". Computed by
	// the interprocedural effect analysis — the same summary that gates
	// parallel evaluation and revalidates the caches.
	Reads, Writes []string
	// Signatures are the typed signatures of the routine clones the
	// translation registers, e.g. "max_get_item_price(char, date) -> float".
	Signatures []string
	// SQL is the conventional SQL/PSM script the statement compiles to.
	SQL string
	// Lint holds the static analyzer's findings for the statement
	// against the live catalog (warnings and errors; EXPLAIN reports
	// rather than rejects).
	Lint []Diagnostic
	// Analyzed holds what actually happened when the statement ran —
	// set only by EXPLAIN ANALYZE / DB.ExplainAnalyze, nil for plain
	// EXPLAIN.
	Analyzed *AnalyzeInfo
}

// AnalyzeInfo is the observed execution profile EXPLAIN ANALYZE
// attaches to the plan: the trace identity, the per-stage wall-clock
// breakdown, and the actual counts the plan only predicted.
type AnalyzeInfo struct {
	// TraceID identifies the execution's trace; its full span tree is
	// retrievable from DB.TraceBuffer and the /traces endpoint.
	TraceID obs.TraceID
	// ProcessID is the process-list entry the execution registered,
	// joining this output against slow-log lines and tau_stat_activity
	// history (0 when the registry was disabled).
	ProcessID int64
	// Total is the statement's end-to-end duration on the span clock
	// (the stratum.statement root span's duration).
	Total time.Duration
	// Per-stage durations; stages that did not run are zero.
	Lint, Translate, CP, Execute, Commit, Fsync time.Duration
	// Result and work counts observed during execution.
	Rows, Affected            int
	RowsScanned, RoutineCalls int64
	// ConstantPeriods and Fragments are the actual slicing numbers (MAX
	// only; Fragments requires tracing, which EXPLAIN ANALYZE forces).
	ConstantPeriods, Fragments int64
	// Workers is the number of parallel fragment workers that ran (0
	// when the statement executed serially).
	Workers int
	// Cache outcomes: whether each cache was consulted and whether it
	// hit — the observed counterparts of the plan's would-hit probes.
	TranslationCacheProbed, TranslationCacheHit bool
	CPCacheProbed, CPCacheHit                   bool
	// WAL cost of the statement's durable commit (persistent databases
	// only): bytes appended and fsync batches issued.
	WALBytes, WALFsyncs int64
	// PlanReuseHits counts source relations and join hash tables this
	// statement served from the shared prepared plan; SweepJoins counts
	// overlap joins answered by the sweep-line algorithm. Both are this
	// statement's deltas, not the plan's lifetime totals — repeated
	// EXPLAIN ANALYZE of one statement reports comparable figures even
	// though the plan is shared across the batch.
	PlanReuseHits, SweepJoins int64
}

// Explain parses one statement (a bare statement or an EXPLAIN
// statement) and describes how it would execute, without executing it.
func (db *DB) Explain(src string) (*Explain, error) {
	stmts, err := db.parseScript(context.Background(), src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, found %d", len(stmts))
	}
	stmt := stmts[0]
	if ex, ok := stmt.(*sqlast.ExplainStmt); ok {
		stmt = ex.Body
	}
	return db.ExplainParsed(stmt)
}

// ExplainAnalyze parses one statement, executes it under a forced
// trace, and returns the plan annotated with the observed execution
// profile (Explain.Analyzed). The statement really runs: EXPLAIN
// ANALYZE of a DML statement modifies (and durably commits) data.
func (db *DB) ExplainAnalyze(src string) (*Explain, error) {
	stmts, err := db.parseScript(context.Background(), src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, found %d", len(stmts))
	}
	stmt := stmts[0]
	if ex, ok := stmt.(*sqlast.ExplainStmt); ok {
		stmt = ex.Body
	}
	return db.explainAnalyzeParsed(context.Background(), stmt)
}

// explainAnalyzeParsed computes the plan first (so the would-hit cache
// probes reflect the state the execution is about to see), then
// executes the statement under a forced trace and attaches the
// observed profile.
func (db *DB) explainAnalyzeParsed(ctx context.Context, body sqlast.Stmt) (*Explain, error) {
	if _, ok := body.(*sqlast.ExplainStmt); ok {
		return nil, fmt.Errorf("EXPLAIN cannot be nested")
	}
	e, err := db.ExplainParsed(body)
	if err != nil {
		return nil, err
	}
	if ts := sessionFromContext(ctx); ts == nil || ts.tr == nil {
		ctx, _ = db.WithTrace(ctx)
	}
	_, st, err := db.execStatement(ctx, body)
	if err != nil {
		return nil, err
	}
	e.Analyzed = &AnalyzeInfo{
		TraceID:                st.root.Trace,
		ProcessID:              st.procID,
		Total:                  st.total,
		Lint:                   st.lintDur,
		Translate:              st.translateDur,
		CP:                     st.cpDur,
		Execute:                st.executeDur,
		Commit:                 st.commitDur,
		Fsync:                  st.fsyncDur,
		Rows:                   st.rows,
		Affected:               st.affected,
		RowsScanned:            st.rowsScanned,
		RoutineCalls:           st.routineCalls,
		ConstantPeriods:        st.cps,
		Fragments:              st.fragments,
		Workers:                st.workers,
		TranslationCacheProbed: st.transProbed,
		TranslationCacheHit:    st.transHit,
		CPCacheProbed:          st.cpProbed,
		CPCacheHit:             st.cpHit,
		WALBytes:               st.walBytes,
		WALFsyncs:              st.walFsyncs,
		PlanReuseHits:          st.planHits,
		SweepJoins:             st.sweepJoins,
	}
	return e, nil
}

// ExplainParsed is Explain over a parsed statement.
func (db *DB) ExplainParsed(stmt sqlast.Stmt) (*Explain, error) {
	if _, ok := stmt.(*sqlast.ExplainStmt); ok {
		return nil, fmt.Errorf("EXPLAIN cannot be nested")
	}
	db.sm.explain.Inc()
	e := &Explain{Kind: stmtKind(stmt), Lint: db.LintParsed(stmt), Durability: db.durabilityNote()}

	var t *core.Translation
	var err error
	if ts, ok := stmt.(*sqlast.TemporalStmt); ok && ts.Mod == sqlast.ModSequenced {
		strategy := db.strategy
		if strategy == Auto {
			var reason core.Reason
			strategy, reason = db.chooseStrategy(ts)
			e.AutoReason = string(reason)
		}
		t, err = db.tr.Translate(stmt, strategy)
		if err != nil && errors.Is(err, core.ErrNotTransformable) && strategy == PerStatement && db.strategy == Auto {
			t, err = db.tr.Translate(stmt, Max)
		}
	} else {
		t, err = db.tr.Translate(stmt, db.strategy)
	}
	if err != nil {
		return nil, err
	}

	e.Strategy = t.Strategy
	e.TemporalTables = append([]string(nil), t.TemporalTables...)
	e.Routines = len(t.Routines)
	e.UsesPerPeriodCursor = t.UsesPerPeriodCursor
	e.SQL = t.SQL()

	if t.ContextBegin != nil {
		ctx, cerr := db.contextPeriod(t)
		if cerr != nil {
			return nil, cerr
		}
		e.ContextBegin = types.FormatDate(ctx.Begin)
		e.ContextEnd = types.FormatDate(ctx.End)
		e.Fragments = db.countFragments(t.TemporalTables, ctx, t.Dim)
		if est, ok := db.statsEstimates(t.TemporalTables, false, ctx.Begin, ctx.End); ok {
			e.HasStats = true
			e.EstConstantPeriods = est.ConstantPeriods
			e.EstRows = est.Rows
		}
		if t.NeedsConstantPeriods {
			e.ConstantPeriods = len(temporal.ConstantPeriods(db.collectTimePoints(t.TemporalTables, t.Dim), ctx))
			if !db.UseFigure8SQL {
				e.CPCacheHit = db.peekCP(cpKey(ctx, t.TemporalTables, t.Dim))
			}
		}

		// Predict the interval-join algorithm for MAX's injected stab
		// join. At runtime the outer stream is the cp relation (one row
		// per constant period) and the inner is a stored temporal table —
		// the largest one models the most expensive join. The prediction
		// consults the same cost model the executor does
		// (core.ChooseJoin), fed with the statistics registry's overlap
		// depth when the inner table has been ANALYZEd; it is an
		// estimate, and actual_sweep_joins under EXPLAIN ANALYZE is the
		// ground truth.
		if t.NeedsConstantPeriods && e.ConstantPeriods > 0 {
			var inner *storage.Table
			for _, name := range t.TemporalTables {
				tab := db.eng.Cat.Table(name)
				if tab != nil && (inner == nil || len(tab.Rows) > len(inner.Rows)) {
					inner = tab
				}
			}
			if inner != nil {
				depth, _ := db.eng.TabStats.OverlapDepth(inner)
				sweep, reason := core.ChooseJoin(core.JoinFeatures{
					OuterRows:    int64(e.ConstantPeriods),
					InnerRows:    int64(len(inner.Rows)),
					OverlapDepth: depth,
					// Full-table sorted spans are cached by the table's
					// interval index, so setup is not charged.
					SpansCached: true,
				})
				e.JoinMethod = "probe"
				if sweep {
					e.JoinMethod = "sweep"
				}
				e.JoinReason = string(reason)
			}
		}
	}
	// sum summarizes the user's statement (not the translated plan), so
	// the read/write rows carry the temporal dimension the user touches.
	var sum *check.Summary
	if ts, ok := stmt.(*sqlast.TemporalStmt); ok && ts.Mod == sqlast.ModSequenced {
		// Mirror the execution path exactly: the same cache key a
		// subsequent ExecParsed would look up, and the same gate
		// runNative applies before spawning fragment workers. A cache hit
		// also serves the effect summaries and the parallel-safety
		// verdict, so repeated EXPLAIN runs no effect analysis at all.
		safe := false
		pinned := false
		if ent := db.lookupTranslation(db.translationKey(stmt)); ent != nil {
			e.TranslationCacheHit = true
			db.mu.Lock()
			e.PlanReuse = ent.prepared != nil
			sum = ent.origSummary
			safe = ent.parallelSafe
			db.mu.Unlock()
			pinned = true
		}
		if !pinned {
			safe = chunkOrderSafeMain(t) && db.mainSummary(t).SharedWriteFree()
		}
		e.Parallelism = 1
		if t.NeedsConstantPeriods && !db.UseFigure8SQL {
			if par := db.Parallelism(); par > 1 && e.ConstantPeriods > 1 && safe {
				e.Parallelism = par
				if e.ConstantPeriods < par {
					e.Parallelism = e.ConstantPeriods
				}
			}
		}
	}
	if sum == nil {
		sum = check.Summarize(check.FromStorage(db.eng.Cat), nil, stmt)
	}
	for _, name := range sum.ReadList() {
		e.Reads = append(e.Reads, fmt.Sprintf("%s[%s]", name, sum.Reads[name]))
	}
	for _, name := range sum.WriteList() {
		e.Writes = append(e.Writes, fmt.Sprintf("%s[%s]", name, sum.Writes[name]))
	}
	e.Signatures = routineSignatures(t)
	return e, nil
}

// routineSignatures renders the typed signatures of the translation's
// routine clones from their declared parameter and return types.
func routineSignatures(t *core.Translation) []string {
	kind := func(tn sqlast.TypeName) string {
		if tn.IsCollection() {
			return "table"
		}
		return strings.ToLower(tn.Kind().String())
	}
	params := func(ps []sqlast.ParamDef) string {
		parts := make([]string, len(ps))
		for i, p := range ps {
			parts[i] = kind(p.Type)
			if m := p.Mode.String(); m != "" && m != "IN" {
				parts[i] = strings.ToLower(m) + " " + parts[i]
			}
		}
		return strings.Join(parts, ", ")
	}
	var out []string
	for _, r := range t.Routines {
		switch x := r.(type) {
		case *sqlast.CreateFunctionStmt:
			out = append(out, fmt.Sprintf("%s(%s) -> %s", x.Name, params(x.Params), kind(x.Returns)))
		case *sqlast.CreateProcedureStmt:
			out = append(out, fmt.Sprintf("%s(%s)", x.Name, params(x.Params)))
		}
	}
	return out
}

// Result renders the explanation as a two-column (property, value)
// result set — what the SQL-level EXPLAIN statement returns.
func (e *Explain) Result() *Result {
	out := &Result{Columns: []string{"property", "value"}}
	add := func(prop, val string) {
		out.Rows = append(out.Rows, []Value{
			{inner: types.NewString(prop)}, {inner: types.NewString(val)},
		})
	}
	add("kind", e.Kind)
	if e.Kind == "sequenced" {
		add("strategy", e.Strategy.String())
		if e.AutoReason != "" {
			add("auto_reason", e.AutoReason)
		}
		add("context", fmt.Sprintf("[%s, %s)", e.ContextBegin, e.ContextEnd))
	}
	if len(e.TemporalTables) > 0 {
		add("temporal_tables", strings.Join(e.TemporalTables, ", "))
	}
	if len(e.Reads) > 0 {
		add("reads", strings.Join(e.Reads, ", "))
	}
	if len(e.Writes) > 0 {
		add("writes", strings.Join(e.Writes, ", "))
	}
	if e.Routines > 0 {
		add("routines", fmt.Sprintf("%d", e.Routines))
	}
	for i, sig := range e.Signatures {
		prop := ""
		if i == 0 {
			prop = "typed_signature"
		}
		add(prop, sig)
	}
	if e.Kind == "sequenced" {
		if e.Strategy == Max {
			add("constant_periods", fmt.Sprintf("%d", e.ConstantPeriods))
		}
		if e.HasStats {
			add("est_constant_periods", fmt.Sprintf("%d", e.EstConstantPeriods))
		}
		add("fragments", fmt.Sprintf("%d", e.Fragments))
		if e.HasStats {
			add("est_rows", fmt.Sprintf("%d", e.EstRows))
		}
		if e.UsesPerPeriodCursor {
			add("per_period_cursor", "true")
		}
		if e.Parallelism > 0 {
			add("parallelism", fmt.Sprintf("%d", e.Parallelism))
		}
		hitMiss := func(hit bool) string {
			if hit {
				return "hit"
			}
			return "miss"
		}
		add("translation_cache", hitMiss(e.TranslationCacheHit))
		if e.Strategy == Max {
			add("cp_cache", hitMiss(e.CPCacheHit))
		}
		if e.PlanReuse {
			add("plan_reuse", "reuse")
		} else {
			add("plan_reuse", "new")
		}
		if e.JoinMethod != "" {
			add("join", fmt.Sprintf("%s (%s)", e.JoinMethod, e.JoinReason))
		}
	}
	if a := e.Analyzed; a != nil {
		add("actual_time", a.Total.String())
		if a.TraceID != 0 {
			add("trace_id", a.TraceID.String())
		}
		if a.ProcessID != 0 {
			add("process_id", fmt.Sprintf("%d", a.ProcessID))
		}
		stage := func(name string, d time.Duration) {
			if d > 0 {
				add("actual_"+name, d.String())
			}
		}
		stage("lint", a.Lint)
		stage("translate", a.Translate)
		stage("cp", a.CP)
		stage("execute", a.Execute)
		stage("commit", a.Commit)
		stage("fsync", a.Fsync)
		add("actual_rows", fmt.Sprintf("%d", a.Rows))
		if a.Affected > 0 {
			add("actual_affected", fmt.Sprintf("%d", a.Affected))
		}
		if a.RowsScanned > 0 {
			add("actual_rows_scanned", fmt.Sprintf("%d", a.RowsScanned))
		}
		if a.RoutineCalls > 0 {
			add("actual_routine_calls", fmt.Sprintf("%d", a.RoutineCalls))
		}
		if e.Kind == "sequenced" && e.Strategy == Max {
			add("actual_constant_periods", fmt.Sprintf("%d", a.ConstantPeriods))
			add("actual_fragments", fmt.Sprintf("%d", a.Fragments))
			workers := a.Workers
			if workers == 0 {
				workers = 1
			}
			add("actual_workers", fmt.Sprintf("%d", workers))
		}
		if e.Kind == "sequenced" {
			add("actual_plan_reuse", fmt.Sprintf("%d", a.PlanReuseHits))
			add("actual_sweep_joins", fmt.Sprintf("%d", a.SweepJoins))
		}
		hitMiss := func(hit bool) string {
			if hit {
				return "hit"
			}
			return "miss"
		}
		if a.TranslationCacheProbed {
			add("actual_translation_cache", hitMiss(a.TranslationCacheHit))
		}
		if a.CPCacheProbed {
			add("actual_cp_cache", hitMiss(a.CPCacheHit))
		}
		if a.WALBytes > 0 || a.WALFsyncs > 0 {
			add("actual_wal_bytes", fmt.Sprintf("%d", a.WALBytes))
			add("actual_wal_fsyncs", fmt.Sprintf("%d", a.WALFsyncs))
		}
	}
	if e.Durability != "" {
		add("durability", e.Durability)
	}
	for i, d := range e.Lint {
		prop := ""
		if i == 0 {
			prop = "lint"
		}
		add(prop, d.String())
	}
	for i, line := range strings.Split(strings.TrimRight(e.SQL, "\n"), "\n") {
		prop := ""
		if i == 0 {
			prop = "plan"
		}
		add(prop, line)
	}
	return out
}

// String renders the explanation as the same aligned text table the
// SQL-level EXPLAIN prints.
func (e *Explain) String() string { return e.Result().String() }
