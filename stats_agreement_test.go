package taupsm_test

// Estimate-agreement test on the 16-query benchmark corpus: after
// ANALYZE, EXPLAIN's registry estimates must track the actual slicing
// numbers — est_rows exactly (the endpoint multisets are exact), and
// est_constant_periods as a tight upper bound that collapses to
// equality for single-table statements.

import (
	"testing"

	"taupsm"
	"taupsm/internal/taubench"
)

func TestExplainEstimateAgreementOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the DS1/SMALL benchmark dataset")
	}
	spec, err := taubench.SpecByName("DS1", taubench.Small)
	if err != nil {
		t.Fatal(err)
	}
	r, err := taubench.NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer r.DB.Close()
	r.DB.MustExec(`ANALYZE`)
	r.DB.SetStrategy(taupsm.Max) // actual ConstantPeriods is a MAX-plan number

	checked := 0
	for _, q := range taubench.Queries() {
		for _, days := range []int{7, 30} {
			e, err := r.DB.Explain(taubench.SequencedSQL(q, days))
			if err != nil {
				t.Fatalf("%s/%dd: %v", q.Name, days, err)
			}
			if e.Kind != "sequenced" || len(e.TemporalTables) == 0 {
				continue
			}
			if !e.HasStats {
				t.Fatalf("%s/%dd: estimates missing after ANALYZE (tables %v)", q.Name, days, e.TemporalTables)
			}
			if int(e.EstRows) != e.Fragments {
				t.Errorf("%s/%dd: est_rows %d != fragments %d", q.Name, days, e.EstRows, e.Fragments)
			}
			if int(e.EstConstantPeriods) < e.ConstantPeriods {
				t.Errorf("%s/%dd: est_constant_periods %d under-estimates actual %d",
					q.Name, days, e.EstConstantPeriods, e.ConstantPeriods)
			}
			if len(e.TemporalTables) == 1 && int(e.EstConstantPeriods) != e.ConstantPeriods {
				t.Errorf("%s/%dd: single-table estimate %d != actual %d",
					q.Name, days, e.EstConstantPeriods, e.ConstantPeriods)
			}
			checked++
		}
	}
	if checked < 16 {
		t.Fatalf("only %d corpus cells checked; the corpus should yield at least 16", checked)
	}
}
