package taupsm_test

// Correctness property of batched fragment execution: plan reuse and
// sweep-line joins are pure execution-strategy changes, so over the
// full 16-query benchmark corpus the batched MAX path (shared prepared
// plan + sweep joins, the default) must produce exactly the rows of
// the unbatched MAX path (both features ablated) — same order — under
// serial and parallel evaluation, and the same multiset as PERST
// slicing and as a database recovered from snapshot + WAL.

import (
	"testing"

	"taupsm"
	"taupsm/internal/enginetest"
	"taupsm/internal/taubench"
	"taupsm/internal/wal"
)

func TestBatchedExecutionProperty(t *testing.T) {
	spec, err := taubench.SpecByName("DS1", taubench.Small)
	if err != nil {
		t.Fatal(err)
	}

	mem := taupsm.Open()
	enginetest.LoadCorpus(t, mem, spec)
	// ANALYZE arms the overlap-depth statistics the sweep-vs-probe
	// choice reads, mirroring the benchmark runner's setup.
	mem.MustExec("ANALYZE")

	fs := wal.NewMemFS()
	per, err := taupsm.OpenFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	enginetest.LoadCorpus(t, per, spec)
	if err := per.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	per.Close()
	rec, err := taupsm.OpenFS(fs.CrashImage())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	rec.SetNow(2011, 1, 1)
	rec.MustExec("ANALYZE")

	eng := mem.Engine()
	pairs := 0
	for _, par := range []int{1, 4} {
		mem.SetParallelism(par)
		rec.SetParallelism(par)
		for _, q := range taubench.Queries() {
			sql := taubench.SequencedSQL(q, 30)
			mem.SetStrategy(taupsm.Max)
			rec.SetStrategy(taupsm.Max)

			// Batched, twice: the second run executes against the plan
			// the first one populated.
			cold, err := mem.Query(sql)
			if err != nil {
				t.Fatalf("%s par=%d batched cold: %v", q.Name, par, err)
			}
			warm, err := mem.Query(sql)
			if err != nil {
				t.Fatalf("%s par=%d batched warm: %v", q.Name, par, err)
			}
			want := enginetest.RenderRows(cold)
			if g := enginetest.RenderRows(warm); g != want {
				t.Errorf("%s par=%d: warm batched run diverges from cold\n--- cold\n%s--- warm\n%s",
					q.Name, par, want, g)
			}

			// Unbatched: both tentpole features ablated.
			eng.DisablePlanReuse, eng.DisableSweepJoin = true, true
			plain, err := mem.Query(sql)
			eng.DisablePlanReuse, eng.DisableSweepJoin = false, false
			if err != nil {
				t.Fatalf("%s par=%d unbatched: %v", q.Name, par, err)
			}
			if g := enginetest.RenderRows(plain); g != want {
				t.Errorf("%s par=%d: unbatched run diverges from batched\n--- batched\n%s--- unbatched\n%s",
					q.Name, par, want, g)
			}

			// Recovered database, batched path.
			recovered, err := rec.Query(sql)
			if err != nil {
				t.Fatalf("%s par=%d recovered: %v", q.Name, par, err)
			}
			if g := enginetest.RenderRows(recovered); g != want {
				t.Errorf("%s par=%d: recovered batched run diverges\n--- in-memory\n%s--- recovered\n%s",
					q.Name, par, want, g)
			}

			// PERST computes the same information by an entirely
			// different plan shape (per-statement cursors), and the two
			// strategies fragment result periods differently — MAX one
			// row per constant period, PERST per stored fragment — so
			// the row-for-row comparison is on coalesced results, where
			// both converge to the same canonical periods (order still
			// differs; compare sorted).
			if q.PerstOK {
				mem.CoalesceResults = true
				maxCoal, err := mem.Query(sql)
				if err != nil {
					t.Fatalf("%s par=%d max coalesced: %v", q.Name, par, err)
				}
				mem.SetStrategy(taupsm.PerStatement)
				perst, err := mem.Query(sql)
				mem.CoalesceResults = false
				if err != nil {
					t.Fatalf("%s par=%d perst: %v", q.Name, par, err)
				}
				if w, g := enginetest.SortedRows(maxCoal), enginetest.SortedRows(perst); g != w {
					t.Errorf("%s par=%d: PERST diverges from batched MAX (coalesced)\n--- MAX\n%s\n--- PERST\n%s",
						q.Name, par, w, g)
				}
			}
			pairs++
		}
	}
	if pairs < 32 {
		t.Fatalf("corpus ran only %d query/parallelism pairs", pairs)
	}
	if mem.Metrics().Value("engine.plan_reuse_hits_total") == 0 {
		t.Fatal("no execution served a relation from the prepared plan; the property compared nothing")
	}
	t.Logf("batched property: %d pairs agree; plan_reuse_hits=%d sweep_joins=%d",
		pairs,
		mem.Metrics().Value("engine.plan_reuse_hits_total"),
		mem.Metrics().Value("engine.sweep_joins_total"))
}
