package taupsm

import (
	"fmt"
	"strings"
	"time"

	"taupsm/internal/core"
	"taupsm/internal/engine"
	"taupsm/internal/obs"
	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/temporal"
	"taupsm/internal/types"
)

// Cache sizes. The caches are wiped wholesale when they outgrow their
// cap — staleness is handled by validation, the caps only bound memory
// when many one-shot statements flow through.
const (
	parseCacheCap       = 256
	translationCacheCap = 256
	cpCacheCap          = 1024
)

// tableStamp pins one table's identity and data version at cache-fill
// time. A stamp matches while the same table object (same id — a
// DROP/CREATE cycle changes it) holds the same row data (version —
// every DML bumps it). A stamp of a then-missing table matches while
// the table is still missing.
type tableStamp struct {
	name    string
	id      int64
	version int64
}

// tableStamps captures stamps for the named catalog tables.
func (db *DB) tableStamps(tables []string) []tableStamp {
	out := make([]tableStamp, 0, len(tables))
	for _, name := range tables {
		if t := db.eng.Cat.Table(name); t != nil {
			out = append(out, tableStamp{name: name, id: t.ID(), version: t.Version()})
		} else {
			out = append(out, tableStamp{name: name, id: -1, version: -1})
		}
	}
	return out
}

func (db *DB) stampsValid(stamps []tableStamp) bool {
	for _, s := range stamps {
		t := db.eng.Cat.Table(s.name)
		if t == nil {
			if s.id != -1 {
				return false
			}
			continue
		}
		if t.ID() != s.id || t.Version() != s.version {
			return false
		}
	}
	return true
}

// translationEntry caches one statement's translation. It is valid
// while no durable-schema DDL ran (catVersion, a PersistentVersion
// stamp — the scratch temp tables generated plans churn through do
// not count) and the referenced temporal tables hold the same data
// (stamps — the Auto heuristic reads row counts, so DML can change
// the chosen strategy; they also pin table identity, so a temporal
// temp table being dropped or recreated invalidates the entry even
// though it leaves the persistent version untouched).
type translationEntry struct {
	t          *core.Translation
	catVersion int64
	stamps     []tableStamp
	// registered marks that t.Routines have been installed in the
	// catalog; later executions of this entry skip re-registration
	// (the catVersion check guarantees they are still there).
	registered bool
	// parallelSafe caches the statement-shape analysis gating parallel
	// fragment evaluation.
	parallelSafe bool
	// prepared is the entry's shared prepared plan: source relations,
	// join hash tables, and sorted spans built by one execution and
	// reused — under per-table version validation — by every later
	// execution and by parallel workers. Created lazily under db.mu;
	// dropped with the entry (cache wipe or invalidation), which is the
	// only eviction the plan itself needs.
	prepared *engine.Prepared
}

// renderStmtSQL renders a statement back to SQL text, the translation
// cache's key ("" when the node cannot render itself). Text keys — not
// AST pointers — let EXPLAIN probe for would-hit with its separately
// parsed body, and make repeated Query(src) calls hit regardless of
// parse-cache state.
func renderStmtSQL(stmt sqlast.Stmt) string {
	if s, ok := stmt.(interface{ SQL() string }); ok {
		return s.SQL()
	}
	return ""
}

func (db *DB) translationKey(stmt sqlast.Stmt) string {
	text := renderStmtSQL(stmt)
	if text == "" {
		return ""
	}
	return text + "\x00" + db.strategy.String()
}

// lookupTranslation returns a valid cached entry for key, or nil. The
// whole validation runs under db.mu because runTranslation rewrites an
// entry's catVersion/registered after first execution.
func (db *DB) lookupTranslation(key string) *translationEntry {
	if key == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ent := db.tcache[key]
	if ent == nil || ent.catVersion != db.eng.Cat.PersistentVersion() || !db.stampsValid(ent.stamps) {
		return nil
	}
	return ent
}

func (db *DB) storeTranslation(key string, ent *translationEntry) {
	if key == "" {
		return
	}
	db.mu.Lock()
	if len(db.tcache) >= translationCacheCap {
		db.tcache = map[string]*translationEntry{}
	}
	db.tcache[key] = ent
	db.mu.Unlock()
}

// cpEntry caches the constant-period relation of one (context, table
// set) pair. The table is shared read-only by later executions and by
// parallel workers (chunk tables alias its row slice).
type cpEntry struct {
	stamps []tableStamp
	tab    *storage.Table
}

func cpKey(ctx temporal.Period, tables []string) string {
	return fmt.Sprintf("%d|%d|%s", ctx.Begin, ctx.End, strings.Join(tables, ","))
}

// newCPTable materializes constant periods as a taupsm_cp-shaped table
// (not placed in the catalog — executions bind it as a table variable).
func newCPTable(periods []temporal.Period) *storage.Table {
	tab := storage.NewTable("taupsm_cp", storage.NewSchema([]storage.Column{
		{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
	}))
	tab.Temporary = true
	tab.Rows = make([][]types.Value, len(periods))
	for i, p := range periods {
		tab.Rows[i] = []types.Value{types.NewDate(p.Begin), types.NewDate(p.End)}
	}
	return tab
}

// constantPeriodTable returns the constant-period relation for the
// translation's context, from the cache when the underlying tables are
// unchanged, computing and caching it otherwise. A cache miss times
// the computation as the statement's cp stage and, when traced, emits
// a stratum.cp span under parent (the execute span).
func (db *DB) constantPeriodTable(st *stmtState, parent obs.SpanContext, t *core.Translation, ctx temporal.Period) *storage.Table {
	key := cpKey(ctx, t.TemporalTables)
	db.mu.Lock()
	ent := db.cpcache[key]
	db.mu.Unlock()
	if st != nil {
		st.cpProbed = true
	}
	if ent != nil && db.stampsValid(ent.stamps) {
		db.sm.cpHits.Inc()
		if st != nil {
			st.cpHit = true
		}
		return ent.tab
	}
	db.sm.cpMisses.Inc()
	// Stamps are taken before reading the rows so a racing write can
	// only make them too old (a spurious recomputation), never too new.
	start := time.Now()
	stamps := db.tableStamps(t.TemporalTables)
	periods := temporal.ConstantPeriods(db.collectTimePoints(t.TemporalTables), ctx)
	tab := newCPTable(periods)
	d := time.Since(start)
	if st != nil {
		st.cpDur = d
		if st.tr != nil {
			st.tr.Span(obs.Span{Name: "stratum.cp", Start: start, Dur: d,
				Trace: parent.Trace, ID: obs.NewSpanID(), Parent: parent.Span,
				Attrs: []obs.Attr{obs.AInt("periods", int64(len(periods)))}})
		}
	}
	db.mu.Lock()
	if len(db.cpcache) >= cpCacheCap {
		db.cpcache = map[string]*cpEntry{}
	}
	db.cpcache[key] = &cpEntry{stamps: stamps, tab: tab}
	db.mu.Unlock()
	return tab
}

// peekCP reports whether the constant-period cache holds a valid entry
// for key — EXPLAIN's read-only probe: no fill, no hit/miss counters.
func (db *DB) peekCP(key string) bool {
	db.mu.Lock()
	ent := db.cpcache[key]
	db.mu.Unlock()
	return ent != nil && db.stampsValid(ent.stamps)
}

// cachedParse returns the parsed statements for src, keeping a bounded
// cache of parse results. Reusing the same AST pointers across
// executions is what lets the engine's plan cache (keyed by node
// identity) hit on repeated Query(src) calls; the ASTs are never
// mutated downstream (the translator clones before rewriting and the
// evaluator treats them as read-only).
func (db *DB) cachedParse(src string) ([]sqlast.Stmt, bool) {
	db.mu.Lock()
	stmts, ok := db.parseCache[src]
	db.mu.Unlock()
	return stmts, ok
}

func (db *DB) storeParse(src string, stmts []sqlast.Stmt) {
	db.mu.Lock()
	if len(db.parseCache) >= parseCacheCap {
		db.parseCache = map[string][]sqlast.Stmt{}
	}
	db.parseCache[src] = stmts
	db.mu.Unlock()
}
