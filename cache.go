package taupsm

import (
	"fmt"
	"strings"
	"time"

	"taupsm/internal/check"
	"taupsm/internal/core"
	"taupsm/internal/engine"
	"taupsm/internal/obs"
	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/temporal"
	"taupsm/internal/types"
)

// Cache sizes. The caches are wiped wholesale when they outgrow their
// cap — staleness is handled by validation, the caps only bound memory
// when many one-shot statements flow through.
const (
	parseCacheCap       = 256
	translationCacheCap = 256
	cpCacheCap          = 1024
)

// tableStamp pins one table's identity and data version at cache-fill
// time. A stamp matches while the same table object (same id — a
// DROP/CREATE cycle changes it) holds the same row data (version —
// every DML bumps it). A stamp of a then-missing table matches while
// the table is still missing.
type tableStamp struct {
	name    string
	id      int64
	version int64
}

// tableStamps captures stamps for the named catalog tables.
func (db *DB) tableStamps(tables []string) []tableStamp {
	out := make([]tableStamp, 0, len(tables))
	for _, name := range tables {
		if t := db.eng.Cat.Table(name); t != nil {
			out = append(out, tableStamp{name: name, id: t.ID(), version: t.Version()})
		} else {
			out = append(out, tableStamp{name: name, id: -1, version: -1})
		}
	}
	return out
}

func (db *DB) stampsValid(stamps []tableStamp) bool {
	for _, s := range stamps {
		t := db.eng.Cat.Table(s.name)
		if t == nil {
			if s.id != -1 {
				return false
			}
			continue
		}
		if t.ID() != s.id || t.Version() != s.version {
			return false
		}
	}
	return true
}

// translationEntry caches one statement's translation. Its fast path
// is a PersistentVersion stamp (catVersion): while no durable-schema
// DDL ran at all, the entry is trivially current. When the version has
// moved, the entry falls back to the dependency set the effect
// analysis inferred — the routines, tables, and views the statement
// can actually reach — and re-pins itself if none of them changed, so
// unrelated DDL no longer evicts warm translations. Independently of
// both levels, the referenced temporal tables must hold the same data
// (stamps — the Auto heuristic reads row counts, so DML can change
// the chosen strategy; they also pin table identity, so a temporal
// temp table being dropped or recreated invalidates the entry even
// though it leaves the persistent version untouched).
type translationEntry struct {
	t          *core.Translation
	catVersion int64
	stamps     []tableStamp
	// summary is the interprocedural effect summary of the translated
	// main statement; it feeds EXPLAIN's read/write-set rows and names
	// part of the dependency set below.
	summary *check.Summary
	// origSummary summarizes the pre-translation statement. The
	// translation embeds clones of the routines the statement calls
	// (MAX renames them max_<name>), so the translated main no longer
	// references the originals — but redefining an original must still
	// invalidate the entry. Its dependency names join the set below.
	origSummary *check.Summary
	// depRoutines/depTables/depViews snapshot, per consulted name, the
	// catalog object the name resolved to at pin time (nil for absent).
	// Pointer identity is the validity condition: redefining a routine,
	// recreating or altering a table (ALTER ... ADD VALIDTIME installs a
	// fresh *storage.Table), or replacing a view all change the pointer.
	depRoutines map[string]*storage.Routine
	depTables   map[string]*storage.Table
	depViews    map[string]*storage.View
	// registered marks that t.Routines have been installed in the
	// catalog; later executions of this entry skip re-registration
	// (the catVersion check guarantees they are still there).
	registered bool
	// parallelSafe caches the statement-shape analysis gating parallel
	// fragment evaluation.
	parallelSafe bool
	// prepared is the entry's shared prepared plan: source relations,
	// join hash tables, and sorted spans built by one execution and
	// reused — under per-table version validation — by every later
	// execution and by parallel workers. Created lazily under db.mu;
	// dropped with the entry (cache wipe or invalidation), which is the
	// only eviction the plan itself needs.
	prepared *engine.Prepared
}

// renderStmtSQL renders a statement back to SQL text, the translation
// cache's key ("" when the node cannot render itself). Text keys — not
// AST pointers — let EXPLAIN probe for would-hit with its separately
// parsed body, and make repeated Query(src) calls hit regardless of
// parse-cache state.
func renderStmtSQL(stmt sqlast.Stmt) string {
	if s, ok := stmt.(interface{ SQL() string }); ok {
		return s.SQL()
	}
	return ""
}

func (db *DB) translationKey(stmt sqlast.Stmt) string {
	text := renderStmtSQL(stmt)
	if text == "" {
		return ""
	}
	return text + "\x00" + db.strategy.String()
}

func (ent *translationEntry) depSummaries() []*check.Summary {
	out := make([]*check.Summary, 0, 2)
	if ent.summary != nil {
		out = append(out, ent.summary)
	}
	if ent.origSummary != nil {
		out = append(out, ent.origSummary)
	}
	return out
}

// pinDeps snapshots the entry's dependency set against the live
// catalog. Called at fill time and again after routine registration
// (which installs the translation's clones, changing what their names
// resolve to). Caller holds db.mu when the entry is shared.
func (db *DB) pinDeps(ent *translationEntry) {
	ent.depRoutines = map[string]*storage.Routine{}
	ent.depTables = map[string]*storage.Table{}
	ent.depViews = map[string]*storage.View{}
	for _, sum := range ent.depSummaries() {
		for name := range sum.Routines {
			ent.depRoutines[name] = db.eng.Cat.Routine(name)
		}
		for name := range sum.Tables {
			ent.depTables[name] = db.eng.Cat.Table(name)
			ent.depViews[name] = db.eng.Cat.View(name)
		}
	}
}

// depsValid reports whether every name in the entry's dependency set
// still resolves to the same catalog object it did at pin time.
func (db *DB) depsValid(ent *translationEntry) bool {
	if len(ent.depSummaries()) == 0 {
		return false
	}
	for name, ptr := range ent.depRoutines {
		if db.eng.Cat.Routine(name) != ptr {
			return false
		}
	}
	for name, ptr := range ent.depTables {
		if db.eng.Cat.Table(name) != ptr || db.eng.Cat.View(name) != ent.depViews[name] {
			return false
		}
	}
	return true
}

// lookupTranslation returns a valid cached entry for key, or nil. The
// whole validation runs under db.mu because runTranslation rewrites an
// entry's catVersion/registered after first execution. On a persistent
// catalog-version mismatch the entry is revalidated against its
// dependency set and re-pinned when only unrelated DDL ran; cached
// verdicts derived from the summary (parallelSafe) stay sound because
// everything they depend on is in that set.
func (db *DB) lookupTranslation(key string) *translationEntry {
	if key == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ent := db.tcache[key]
	if ent == nil || !db.stampsValid(ent.stamps) {
		return nil
	}
	if catV := db.eng.Cat.PersistentVersion(); ent.catVersion != catV {
		if !db.depsValid(ent) {
			return nil
		}
		ent.catVersion = catV
	}
	return ent
}

func (db *DB) storeTranslation(key string, ent *translationEntry) {
	if key == "" {
		return
	}
	db.mu.Lock()
	if len(db.tcache) >= translationCacheCap {
		db.tcache = map[string]*translationEntry{}
	}
	db.tcache[key] = ent
	db.mu.Unlock()
}

// cpEntry caches the constant-period relation of one (context, table
// set) pair. The table is shared read-only by later executions and by
// parallel workers (chunk tables alias its row slice).
type cpEntry struct {
	stamps []tableStamp
	tab    *storage.Table
}

func cpKey(ctx temporal.Period, tables []string, dim sqlast.TemporalDimension) string {
	return fmt.Sprintf("%d|%d|%d|%s", dim, ctx.Begin, ctx.End, strings.Join(tables, ","))
}

// newCPTable materializes constant periods as a taupsm_cp-shaped table
// (not placed in the catalog — executions bind it as a table variable).
func newCPTable(periods []temporal.Period) *storage.Table {
	tab := storage.NewTable("taupsm_cp", storage.NewSchema([]storage.Column{
		{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
	}))
	tab.Temporary = true
	tab.Rows = make([][]types.Value, len(periods))
	for i, p := range periods {
		tab.Rows[i] = []types.Value{types.NewDate(p.Begin), types.NewDate(p.End)}
	}
	return tab
}

// constantPeriodTable returns the constant-period relation for the
// translation's context, from the cache when the underlying tables are
// unchanged, computing and caching it otherwise. A cache miss times
// the computation as the statement's cp stage and, when traced, emits
// a stratum.cp span under parent (the execute span).
func (db *DB) constantPeriodTable(st *stmtState, parent obs.SpanContext, t *core.Translation, ctx temporal.Period) *storage.Table {
	key := cpKey(ctx, t.TemporalTables, t.Dim)
	db.mu.Lock()
	ent := db.cpcache[key]
	db.mu.Unlock()
	if st != nil {
		st.cpProbed = true
	}
	if ent != nil && db.stampsValid(ent.stamps) {
		db.sm.cpHits.Inc()
		if st != nil {
			st.cpHit = true
		}
		return ent.tab
	}
	db.sm.cpMisses.Inc()
	// Stamps are taken before reading the rows so a racing write can
	// only make them too old (a spurious recomputation), never too new.
	start := time.Now()
	stamps := db.tableStamps(t.TemporalTables)
	periods := temporal.ConstantPeriods(db.collectTimePoints(t.TemporalTables, t.Dim), ctx)
	tab := newCPTable(periods)
	d := time.Since(start)
	if st != nil {
		st.cpDur = d
		if st.tr != nil {
			st.tr.Span(obs.Span{Name: "stratum.cp", Start: start, Dur: d,
				Trace: parent.Trace, ID: obs.NewSpanID(), Parent: parent.Span,
				Attrs: []obs.Attr{obs.AInt("periods", int64(len(periods)))}})
		}
	}
	db.mu.Lock()
	if len(db.cpcache) >= cpCacheCap {
		db.cpcache = map[string]*cpEntry{}
	}
	db.cpcache[key] = &cpEntry{stamps: stamps, tab: tab}
	db.mu.Unlock()
	return tab
}

// peekCP reports whether the constant-period cache holds a valid entry
// for key — EXPLAIN's read-only probe: no fill, no hit/miss counters.
func (db *DB) peekCP(key string) bool {
	db.mu.Lock()
	ent := db.cpcache[key]
	db.mu.Unlock()
	return ent != nil && db.stampsValid(ent.stamps)
}

// cachedParse returns the parsed statements for src, keeping a bounded
// cache of parse results. Reusing the same AST pointers across
// executions is what lets the engine's plan cache (keyed by node
// identity) hit on repeated Query(src) calls; the ASTs are never
// mutated downstream (the translator clones before rewriting and the
// evaluator treats them as read-only).
func (db *DB) cachedParse(src string) ([]sqlast.Stmt, bool) {
	db.mu.Lock()
	stmts, ok := db.parseCache[src]
	db.mu.Unlock()
	return stmts, ok
}

func (db *DB) storeParse(src string, stmts []sqlast.Stmt) {
	db.mu.Lock()
	if len(db.parseCache) >= parseCacheCap {
		db.parseCache = map[string][]sqlast.Stmt{}
	}
	db.parseCache[src] = stmts
	db.mu.Unlock()
}
