package taupsm

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

// paperDB builds the paper's running example: the bookstore schema with
// the temporal tables item, author, and item_author, and the
// get_author_name() stored function of Figure 1.
func paperDB(t testing.TB) *DB {
	db := Open()
	db.SetNow(2010, 6, 15)
	db.MustExec(`
CREATE TABLE item (id CHAR(10), title CHAR(100)) AS VALIDTIME;
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10)) AS VALIDTIME;

NONSEQUENCED VALIDTIME INSERT INTO item VALUES
  ('i1', 'SQL Basics',    DATE '2010-01-01', DATE '2011-01-01'),
  ('i2', 'Advanced SQL',  DATE '2010-03-01', DATE '2010-09-01'),
  ('i3', 'Temporal Data', DATE '2010-05-01', DATE '2011-01-01');

NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben', DATE '2010-01-01', DATE '2010-07-01'),
  ('a1', 'Benjamin', DATE '2010-07-01', DATE '2011-01-01'),
  ('a2', 'Amy', DATE '2010-01-01', DATE '2011-01-01');

NONSEQUENCED VALIDTIME INSERT INTO item_author VALUES
  ('i1', 'a1', DATE '2010-01-01', DATE '2011-01-01'),
  ('i2', 'a1', DATE '2010-03-01', DATE '2010-09-01'),
  ('i3', 'a2', DATE '2010-05-01', DATE '2011-01-01');

CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END;
`)
	return db
}

// sortedRows renders and sorts result rows for order-insensitive
// comparison.
func sortedRows(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got *Result, want ...string) {
	t.Helper()
	g := sortedRows(got)
	sort.Strings(want)
	if len(g) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(g), g, len(want), want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("row %d: got %q want %q\nall: %v", i, g[i], want[i], g)
		}
	}
}

// The query of Figure 2 with current semantics: Ben currently (June 15)
// authors i1 and i2.
func TestCurrentQueryWithFunction(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "SQL Basics", "Advanced SQL")
}

// Temporal upward compatibility: after the rename to Benjamin, the
// current query tracks the current state.
func TestCurrentQueryTracksNow(t *testing.T) {
	db := paperDB(t)
	db.SetNow(2010, 8, 1) // Ben renamed to Benjamin on July 1
	res, err := db.Query(`
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res) // no rows: he is Benjamin now
	res, err = db.Query(`
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Benjamin'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "SQL Basics", "Advanced SQL")
}

// The sequenced query of Figure 3 under both strategies. Expected
// history of titles by "Ben" (who holds that name Jan 1 - Jul 1):
//
//	SQL Basics   over [2010-01-01, 2010-07-01)
//	Advanced SQL over [2010-03-01, 2010-07-01)
//
// (fragmentation may split these periods; coalesced they must match).
func seqFig3(t *testing.T, strategy Strategy) *Result {
	t.Helper()
	db := paperDB(t)
	db.SetStrategy(strategy)
	res, err := db.Query(`
		VALIDTIME SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
	if err != nil {
		t.Fatalf("strategy %v: %v", strategy, err)
	}
	return res
}

// coalesceRows merges adjacent periods of value-equal rows; expects
// columns (begin_time, end_time, vals...).
func coalesceRows(res *Result) []string {
	type pr struct {
		key        string
		begin, end string
	}
	var rows []pr
	for _, r := range res.Rows {
		var vals []string
		for _, v := range r[2:] {
			vals = append(vals, v.String())
		}
		rows = append(rows, pr{key: strings.Join(vals, "|"), begin: r[0].String(), end: r[1].String()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key != rows[j].key {
			return rows[i].key < rows[j].key
		}
		return rows[i].begin < rows[j].begin
	})
	var out []pr
	for _, r := range rows {
		if n := len(out); n > 0 && out[n-1].key == r.key && out[n-1].end >= r.begin {
			if r.end > out[n-1].end {
				out[n-1].end = r.end
			}
			continue
		}
		out = append(out, r)
	}
	var ss []string
	for _, r := range out {
		ss = append(ss, r.key+" ["+r.begin+","+r.end+")")
	}
	return ss
}

func TestSequencedQueryMax(t *testing.T) {
	res := seqFig3(t, Max)
	got := coalesceRows(res)
	want := []string{
		"Advanced SQL [2010-03-01,2010-07-01)",
		"SQL Basics [2010-01-01,2010-07-01)",
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("MAX sequenced result:\ngot  %v\nwant %v", got, want)
	}
}

func TestSequencedQueryPerStatement(t *testing.T) {
	res := seqFig3(t, PerStatement)
	got := coalesceRows(res)
	want := []string{
		"Advanced SQL [2010-03-01,2010-07-01)",
		"SQL Basics [2010-01-01,2010-07-01)",
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("PERST sequenced result:\ngot  %v\nwant %v", got, want)
	}
}

func TestSequencedStrategiesAgree(t *testing.T) {
	maxRes := seqFig3(t, Max)
	psRes := seqFig3(t, PerStatement)
	mg, pg := coalesceRows(maxRes), coalesceRows(psRes)
	if strings.Join(mg, ";") != strings.Join(pg, ";") {
		t.Fatalf("MAX and PERST disagree:\nMAX   %v\nPERST %v", mg, pg)
	}
}

// MAX invokes the routine once per (tuple x constant period); PERST
// invokes it once per satisfying tuple — Figure 7's call-count
// asymmetry observed through engine statistics.
func TestRoutineCallAsymmetry(t *testing.T) {
	dbm := paperDB(t)
	dbm.SetStrategy(Max)
	dbm.Engine().Stats.Reset()
	if _, err := dbm.Query(`VALIDTIME SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`); err != nil {
		t.Fatal(err)
	}
	maxCalls := dbm.Engine().Stats.RoutineCalls

	dbp := paperDB(t)
	dbp.SetStrategy(PerStatement)
	dbp.Engine().Stats.Reset()
	if _, err := dbp.Query(`VALIDTIME SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`); err != nil {
		t.Fatal(err)
	}
	psCalls := dbp.Engine().Stats.RoutineCalls

	if maxCalls <= psCalls {
		t.Fatalf("expected MAX (%d calls) to invoke the routine more often than PERST (%d calls)", maxCalls, psCalls)
	}
}

// Sequenced query with an explicit temporal context restricts the
// result.
func TestSequencedWithContext(t *testing.T) {
	for _, s := range []Strategy{Max, PerStatement} {
		db := paperDB(t)
		db.SetStrategy(s)
		res, err := db.Query(`
			VALIDTIME (DATE '2010-04-01', DATE '2010-06-01')
			SELECT i.title FROM item i, item_author ia
			WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		got := coalesceRows(res)
		want := []string{
			"Advanced SQL [2010-04-01,2010-06-01)",
			"SQL Basics [2010-04-01,2010-06-01)",
		}
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("strategy %v:\ngot  %v\nwant %v", s, got, want)
		}
	}
}

// Nonsequenced queries see the timestamps as plain columns.
func TestNonsequencedQuery(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
		NONSEQUENCED VALIDTIME
		SELECT first_name FROM author WHERE begin_time = DATE '2010-07-01'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "Benjamin")
}

// The Figure-8 SQL path and the native constant-period computation must
// agree exactly.
func TestFigure8EqualsNative(t *testing.T) {
	q := `VALIDTIME SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`

	dbn := paperDB(t)
	dbn.SetStrategy(Max)
	resN, err := dbn.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	dbf := paperDB(t)
	dbf.SetStrategy(Max)
	dbf.UseFigure8SQL = true
	resF, err := dbf.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	n, f := sortedRows(resN), sortedRows(resF)
	if strings.Join(n, ";") != strings.Join(f, ";") {
		t.Fatalf("native cp and Figure-8 SQL disagree:\nnative %v\nfig8   %v", n, f)
	}
}

// Commutativity (paper §VII-B): the timeslice of the sequenced result
// at day d equals the nontemporal query evaluated on the timeslice at
// day d.
func TestCommutativityRunningExample(t *testing.T) {
	for _, s := range []Strategy{Max, PerStatement} {
		db := paperDB(t)
		db.SetStrategy(s)
		seq, err := db.Query(`VALIDTIME SELECT i.title FROM item i, item_author ia
			WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
		if err != nil {
			t.Fatal(err)
		}
		for _, day := range []string{"2010-01-01", "2010-02-15", "2010-03-01", "2010-06-30", "2010-07-01", "2010-12-31"} {
			// timeslice of the sequenced result
			var slice []string
			for _, row := range seq.Rows {
				if row[0].String() <= day && day < row[1].String() {
					slice = append(slice, row[2].String())
				}
			}
			sort.Strings(slice)
			// nontemporal query on that day's state
			dbd := paperDB(t)
			parts := strings.Split(day, "-")
			y, m, d := atoi(parts[0]), atoi(parts[1]), atoi(parts[2])
			dbd.SetNow(y, m, d)
			cur, err := dbd.Query(`SELECT i.title FROM item i, item_author ia
				WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
			if err != nil {
				t.Fatal(err)
			}
			curRows := sortedRows(cur)
			if strings.Join(slice, ";") != strings.Join(curRows, ";") {
				t.Fatalf("strategy %v day %s: timeslice %v != current %v", s, day, slice, curRows)
			}
		}
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// A routine containing a temporal modifier may only be invoked from a
// nonsequenced context (paper §IV-A).
func TestInnerModifierSemanticError(t *testing.T) {
	db := paperDB(t)
	db.MustExec(`
CREATE FUNCTION ever_named (aid CHAR(10), nm CHAR(50))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE n INTEGER DEFAULT 0;
  FOR r AS NONSEQUENCED VALIDTIME SELECT first_name FROM author
      WHERE author_id = aid AND first_name = nm DO
    SET n = n + 1;
  END FOR;
  RETURN n;
END`)
	// Invoked from a current (or sequenced) context: semantic error.
	if _, err := db.Query(`SELECT title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND ever_named(ia.author_id, 'Ben') > 0`); err == nil {
		t.Fatal("expected semantic error invoking modifier-carrying routine from a current context")
	}
	db.SetStrategy(Max)
	if _, err := db.Query(`VALIDTIME SELECT title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND ever_named(ia.author_id, 'Ben') > 0`); err == nil {
		t.Fatal("expected semantic error invoking modifier-carrying routine from a sequenced context")
	}
	// From a nonsequenced context it is fine (paper §IV-A).
	res, err := db.Query(`NONSEQUENCED VALIDTIME SELECT DISTINCT title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND ever_named(ia.author_id, 'Ben') > 0`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "SQL Basics", "Advanced SQL")
}

// Translate produces conventional SQL/PSM that no longer contains
// temporal modifiers and matches the paper's shapes.
func TestTranslateShapes(t *testing.T) {
	db := paperDB(t)
	q := `VALIDTIME SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`

	maxSQL, err := db.Translate(q, Max)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"max_get_author_name", "taupsm_cp", "cp.begin_time", "begin_time_in"} {
		if !strings.Contains(maxSQL, want) {
			t.Errorf("MAX translation missing %q:\n%s", want, maxSQL)
		}
	}
	if strings.Contains(maxSQL, "VALIDTIME") {
		t.Errorf("MAX translation still contains a temporal modifier:\n%s", maxSQL)
	}

	psSQL, err := db.Translate(q, PerStatement)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ps_get_author_name", "taupsm_result", "period_begin", "period_end", "LAST_INSTANCE", "FIRST_INSTANCE", "TABLE(ps_get_author_name"} {
		if !strings.Contains(psSQL, want) {
			t.Errorf("PERST translation missing %q:\n%s", want, psSQL)
		}
	}
	if strings.Contains(psSQL, "VALIDTIME") {
		t.Errorf("PERST translation still contains a temporal modifier:\n%s", psSQL)
	}
}

// Current modifications maintain periods: delete closes validity.
func TestCurrentDelete(t *testing.T) {
	db := paperDB(t)
	db.SetNow(2010, 6, 15)
	if _, err := db.Exec(`DELETE FROM item WHERE id = 'i1'`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT title FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "Advanced SQL", "Temporal Data")
	// history is preserved
	res, err = db.Query(`NONSEQUENCED VALIDTIME SELECT title, end_time FROM item WHERE id = 'i1'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "SQL Basics|2010-06-15")
}

// Current update closes the old version and starts a new one.
func TestCurrentUpdate(t *testing.T) {
	db := paperDB(t)
	db.SetNow(2010, 6, 15)
	if _, err := db.Exec(`UPDATE author SET first_name = 'Benny' WHERE author_id = 'a1'`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT first_name FROM author WHERE author_id = 'a1'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "Benny")
	// the old version ends today
	res, err = db.Query(`NONSEQUENCED VALIDTIME SELECT first_name, begin_time, end_time
		FROM author WHERE author_id = 'a1' ORDER BY begin_time`)
	if err != nil {
		t.Fatal(err)
	}
	rows := sortedRows(res)
	if len(rows) != 3 {
		t.Fatalf("expected 3 versions, got %v", rows)
	}
}

// Sequenced delete splits straddling rows.
func TestSequencedDelete(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`VALIDTIME (DATE '2010-04-01', DATE '2010-05-01')
		DELETE FROM item WHERE id = 'i1'`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`NONSEQUENCED VALIDTIME
		SELECT begin_time, end_time FROM item WHERE id = 'i1' ORDER BY begin_time`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "2010-01-01|2010-04-01", "2010-05-01|2011-01-01")
}

// Sequenced update modifies only the period, preserving values outside.
func TestSequencedUpdate(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`VALIDTIME (DATE '2010-02-01', DATE '2010-03-01')
		UPDATE author SET first_name = 'Benjy' WHERE author_id = 'a1'`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`NONSEQUENCED VALIDTIME
		SELECT first_name, begin_time, end_time FROM author WHERE author_id = 'a1' ORDER BY begin_time`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res,
		"Ben|2010-01-01|2010-02-01",
		"Benjy|2010-02-01|2010-03-01",
		"Ben|2010-03-01|2010-07-01",
		"Benjamin|2010-07-01|2011-01-01")
}

// The heuristic chooses MAX when PERST does not apply.
func TestAutoFallsBackToMax(t *testing.T) {
	db := paperDB(t)
	// A sequenced aggregate is not per-statement transformable.
	res, err := db.Query(`VALIDTIME SELECT COUNT(*) FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("expected rows from sequenced aggregate under MAX fallback")
	}
	if _, err := db.Translate(`VALIDTIME SELECT COUNT(*) FROM item`, PerStatement); !errors.Is(err, ErrNotTransformable) {
		t.Fatalf("expected ErrNotTransformable from PERST for sequenced aggregate, got %v", err)
	}
}

// Sequenced aggregation under MAX: count of items valid on each day.
func TestSequencedAggregateMax(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	res, err := db.Query(`VALIDTIME SELECT COUNT(*) FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	got := coalesceRows(res)
	want := []string{
		"1 [2010-01-01,2010-03-01)",
		"2 [2010-03-01,2010-05-01)",
		"3 [2010-05-01,2010-09-01)",
		"2 [2010-09-01,2011-01-01)",
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("sequenced COUNT:\ngot  %v\nwant %v", got, want)
	}
}
