package taupsm

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"taupsm/internal/obs"
)

// fig3SQL is the paper's Figure-3 sequenced query, the standard
// tracing subject: under MAX it slices into constant periods and
// evaluates per-fragment.
const fig3SQL = `VALIDTIME SELECT i.title FROM item i, item_author ia
	WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`

// spanByName returns the single span with the given name, failing the
// test on zero or multiple matches.
func spanByName(t *testing.T, spans []obs.Span, name string) obs.Span {
	t.Helper()
	var out []obs.Span
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	if len(out) != 1 {
		t.Fatalf("want exactly one %q span, got %d", name, len(out))
	}
	return out[0]
}

func TestWithTraceSpanTree(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	ctx, id := db.WithTrace(context.Background())
	if id == 0 {
		t.Fatal("WithTrace allocated no trace ID")
	}
	if _, err := db.QueryContext(ctx, fig3SQL); err != nil {
		t.Fatal(err)
	}

	spans := db.TraceBuffer().TraceSpans(id)
	if len(spans) == 0 {
		t.Fatal("no spans buffered for the trace")
	}
	for _, s := range spans {
		if s.Trace != id {
			t.Fatalf("span %q carries trace %v, want %v", s.Name, s.Trace, id)
		}
		if s.ID == 0 {
			t.Fatalf("span %q has no span ID", s.Name)
		}
	}

	root := spanByName(t, spans, "stratum.statement")
	if root.Parent != 0 {
		t.Fatalf("stratum.statement is not a root (parent %v)", root.Parent)
	}
	translate := spanByName(t, spans, "stratum.translate")
	execute := spanByName(t, spans, "stratum.execute")
	if translate.Parent != root.ID || execute.Parent != root.ID {
		t.Fatalf("translate/execute not children of the statement root")
	}
	cp := spanByName(t, spans, "stratum.cp")
	if cp.Parent != execute.ID {
		t.Fatalf("stratum.cp parent = %v, want the execute span %v", cp.Parent, execute.ID)
	}
	spanByName(t, spans, "stratum.parse") // the script's parse joins the trace

	// The tree renders every span: no orphans hiding at the root level
	// besides statement and parse.
	roots := obs.BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("expected 2 root spans (parse, statement), got %d", len(roots))
	}
}

func TestTraceSamplingEveryNth(t *testing.T) {
	db := paperDB(t)
	db.TraceBuffer().Reset()

	// Sampling off: statements leave nothing in the ring.
	if n := db.TraceSampling(); n != 0 {
		t.Fatalf("default sampling = %d, want off", n)
	}
	db.MustExec(`SELECT title FROM item`)
	if db.TraceBuffer().Len() != 0 {
		t.Fatalf("ring has %d spans with sampling off", db.TraceBuffer().Len())
	}

	// Every 2nd statement sampled: 4 scripts leave exactly 2 traces.
	db.SetTraceSampling(2)
	for i := 0; i < 4; i++ {
		db.MustExec(`SELECT title FROM item`)
	}
	if got := len(db.TraceBuffer().Traces()); got != 2 {
		t.Fatalf("sampled %d traces of 4 statements at 1-in-2, want 2", got)
	}

	// WithTrace forces capture regardless of sampling.
	db.SetTraceSampling(0)
	db.TraceBuffer().Reset()
	ctx, id := db.WithTrace(context.Background())
	if _, err := db.ExecContext(ctx, `SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}
	if len(db.TraceBuffer().TraceSpans(id)) == 0 {
		t.Fatal("WithTrace did not capture spans with sampling off")
	}
}

// TestExplainAnalyzeSequencedMax is the acceptance check: EXPLAIN
// ANALYZE of a sequenced MAX query reports the actual fragment count
// and per-stage durations, and on a persistent database the WAL fsync
// count of a DML statement matches the metrics delta.
func TestExplainAnalyzeSequencedMax(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	e, err := db.ExplainAnalyze(fig3SQL)
	if err != nil {
		t.Fatal(err)
	}
	a := e.Analyzed
	if a == nil {
		t.Fatal("ExplainAnalyze returned no profile")
	}
	if a.TraceID == 0 {
		t.Error("no trace ID")
	}
	if a.Total <= 0 || a.Execute <= 0 || a.Translate <= 0 {
		t.Errorf("stage durations not observed: total=%v translate=%v execute=%v",
			a.Total, a.Translate, a.Execute)
	}
	if a.Execute >= a.Total {
		t.Errorf("execute (%v) should be under the total (%v)", a.Execute, a.Total)
	}
	if a.Fragments <= 0 {
		t.Errorf("fragments = %d, want > 0 for a MAX-sliced query", a.Fragments)
	}
	if a.ConstantPeriods <= 0 {
		t.Errorf("constant periods = %d, want > 0", a.ConstantPeriods)
	}
	if a.Rows == 0 || a.RoutineCalls == 0 {
		t.Errorf("rows=%d routine_calls=%d, want > 0", a.Rows, a.RoutineCalls)
	}
	// The plan's predicted fragment count and the observed one measure
	// the same slicing.
	if e.Fragments > 0 && int64(e.Fragments) != a.Fragments {
		t.Errorf("plan predicted %d fragments, execution observed %d", e.Fragments, a.Fragments)
	}
	// The rendered plan carries the actual_* rows.
	text := e.Result().String()
	for _, want := range []string{"actual_time", "trace_id", "actual_fragments", "actual_rows"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered plan missing %q:\n%s", want, text)
		}
	}

	// The trace is retrievable from the buffer by the reported ID.
	if len(db.TraceBuffer().TraceSpans(a.TraceID)) == 0 {
		t.Error("EXPLAIN ANALYZE trace not in the buffer")
	}
}

func TestExplainAnalyzeWALFsyncsMatchMetrics(t *testing.T) {
	db, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustExec(`CREATE TABLE item (id CHAR(10), title CHAR(100)) AS VALIDTIME;`)

	before := db.Metrics().Value("wal.fsyncs_total")
	e, err := db.ExplainAnalyze(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES
		('i1', 'SQL Basics', DATE '2010-01-01', DATE '2011-01-01')`)
	if err != nil {
		t.Fatal(err)
	}
	delta := db.Metrics().Value("wal.fsyncs_total") - before
	a := e.Analyzed
	if a.WALFsyncs == 0 {
		t.Fatal("durable INSERT reported no WAL fsyncs")
	}
	if a.WALFsyncs != delta {
		t.Fatalf("profile says %d fsyncs, metrics delta is %d", a.WALFsyncs, delta)
	}
	if a.WALBytes <= 0 {
		t.Errorf("wal_bytes = %d, want > 0", a.WALBytes)
	}
	if a.Commit <= 0 || a.Fsync <= 0 {
		t.Errorf("commit=%v fsync=%v, want > 0 on a persistent database", a.Commit, a.Fsync)
	}
}

func TestSlowLogJSON(t *testing.T) {
	db := paperDB(t)
	var buf bytes.Buffer
	db.SetSlowLog(&buf, time.Nanosecond) // everything is slow
	defer db.SetSlowLog(nil, 0)
	db.SetStrategy(Max)
	if _, err := db.Query(fig3SQL); err != nil {
		t.Fatal(err)
	}
	db.SetSlowLog(nil, 0)
	if db.SlowLogThreshold() != 0 {
		t.Fatal("SetSlowLog(nil, 0) did not disarm")
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var ent SlowLogEntry
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ent); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, buf.String())
	}
	if ent.Kind != "sequenced" {
		t.Errorf("kind = %q", ent.Kind)
	}
	if ent.Strategy != "MAX" {
		t.Errorf("strategy = %q", ent.Strategy)
	}
	if ent.ElapsedNS <= 0 || ent.Stages.ExecuteNS <= 0 || ent.Stages.TranslateNS <= 0 {
		t.Errorf("durations not recorded: %+v", ent)
	}
	if ent.Digest == "" || len(ent.Digest) != 16 {
		t.Errorf("digest = %q, want 16 hex chars", ent.Digest)
	}
	if !strings.Contains(ent.Statement, "VALIDTIME SELECT") {
		t.Errorf("statement = %q", ent.Statement)
	}
	if ent.Rows == 0 || ent.RoutineCalls == 0 {
		t.Errorf("counts not recorded: %+v", ent)
	}
	if ent.TraceID != "" {
		t.Errorf("untraced statement carries trace ID %q", ent.TraceID)
	}

	// A traced statement's entry carries its trace ID.
	buf.Reset()
	db.SetSlowLog(&buf, time.Nanosecond)
	ctx, id := db.WithTrace(context.Background())
	if _, err := db.ExecContext(ctx, `SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}
	var traced SlowLogEntry
	line := strings.Split(strings.TrimSpace(buf.String()), "\n")[0]
	if err := json.Unmarshal([]byte(line), &traced); err != nil {
		t.Fatal(err)
	}
	if traced.TraceID != id.String() {
		t.Errorf("trace_id = %q, want %q", traced.TraceID, id)
	}
}

// TestParallelWorkerSpans is the worker-span race check: parallel MAX
// fragment workers emit spans concurrently into the shared sinks (run
// under -race via `make verify`). Every worker span must arrive
// exactly once, correctly parented, and the ring must stay bounded.
func TestParallelWorkerSpans(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	db.SetParallelism(4)

	const stmts = 8
	var wg sync.WaitGroup
	ids := make([]obs.TraceID, stmts)
	errs := make([]error, stmts)
	for i := 0; i < stmts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, id := db.WithTrace(context.Background())
			ids[i] = id
			_, errs[i] = db.QueryContext(ctx, fig3SQL)
		}(i)
	}
	wg.Wait()

	ring := db.TraceBuffer()
	if ring.Len() > ring.Cap() {
		t.Fatalf("ring exceeded its bound: %d > %d", ring.Len(), ring.Cap())
	}
	seen := map[obs.SpanID]bool{}
	for i := 0; i < stmts; i++ {
		if errs[i] != nil {
			t.Fatalf("statement %d: %v", i, errs[i])
		}
		spans := ring.TraceSpans(ids[i])
		execute := spanByName(t, spans, "stratum.execute")
		var workers int
		for _, s := range spans {
			if seen[s.ID] {
				t.Fatalf("span ID %v delivered twice", s.ID)
			}
			seen[s.ID] = true
			if s.Name == "stratum.worker" {
				workers++
				if s.Parent != execute.ID {
					t.Fatalf("worker span parent = %v, want execute %v", s.Parent, execute.ID)
				}
			}
		}
		if workers < 2 {
			t.Fatalf("trace %v recorded %d worker spans, want >= 2 (parallel MAX under tracing)", ids[i], workers)
		}
	}
}

func TestLastStatementSpanClock(t *testing.T) {
	db := paperDB(t)
	ctx, id := db.WithTrace(context.Background())
	if _, err := db.ExecContext(ctx, `SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}
	lastID, elapsed := db.LastStatement()
	if lastID != id {
		t.Fatalf("LastStatement trace = %v, want %v", lastID, id)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	root := spanByName(t, db.TraceBuffer().TraceSpans(id), "stratum.statement")
	if root.Dur != elapsed {
		t.Fatalf("\\timing clock (%v) disagrees with the root span (%v)", elapsed, root.Dur)
	}
}
